//! Deterministic torture harness: seeded fault injection + kill/restart
//! cycles + invariant checking, end to end.
//!
//! One trial = one `TORTURE_SEED`. The seed derives *everything* random in
//! the trial — the daemon's [`FaultPlan`] (short/torn writes, injected
//! EIO/ENOSPC, dropped fsyncs, connection resets), the per-client workload
//! mix, and the kill schedule — so a failing trial reproduces from the
//! printed seed alone, with no dependence on thread count or wall-clock
//! timing beyond which operations manage to run before a mid-phase kill
//! (the *validity* checks are timing-independent: they accept any prefix of
//! the workload having landed, but never a torn or leaked state).
//!
//! A trial runs several *phases*. Each phase starts the daemon and its UDS
//! server, unleashes `clients` threads doing a mixed workload (counter
//! transactions on a per-client pool, ephemeral pool create/drop, stats and
//! reads), then tears the daemon down — either gracefully after the clients
//! finish, or abruptly mid-work on seeds that schedule a kill. Between
//! phases the harness restarts the daemon with faults quiesced, runs
//! recovery, and checks:
//!
//! * the shared structural layer — [`puddled::Invariants`]: registry /
//!   allocator consistency, no overlapping or leaked extents, no orphaned
//!   puddles or log chains;
//! * **committed-or-rolled-back visibility** — every pool whose creation
//!   was *acknowledged* exists, every acknowledged drop stays dropped, and
//!   each client counter holds a value between the highest acknowledged
//!   and the highest attempted write (operations whose acknowledgement was
//!   lost to an injected fault may land either way — but never partially).
//!
//! Faults are disabled during recovery + verification ([`FaultPlan`]
//! `set_enabled(false)`): the fault plane models failing *production*
//! I/O, and verifying through an unreliable lens would make every check
//! vacuous. Recovery-under-fault is covered separately by the failpoint
//! crash tests (`wal_crash`, `crash_sweep`).
//!
//! Consumed by `crates/puddled/tests/torture.rs` (bounded in-tree sweep)
//! and the `torture_sweep` bench binary (deep CI sweeps).

use crate::{PoolOptions, PuddleClient, RetryPolicy};
use puddled::{Daemon, DaemonConfig, Invariants, UdsServer};
use puddles_pmem::faultio::{FaultPlan, FaultProfile};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The persistent root of each client's counter pool.
#[repr(C)]
struct TortureCounter {
    value: u64,
}
crate::impl_pm_type!(TortureCounter, "torture::Counter", []);

/// Everything one torture trial needs; derived from the seed by
/// [`TortureConfig::from_seed`], overridable for focused tests.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// The trial seed — drives the fault plan, workload, and kill schedule.
    pub seed: u64,
    /// Concurrent client threads per phase.
    pub clients: usize,
    /// Daemon start → teardown cycles (each ends in recovery + checks).
    pub phases: usize,
    /// Operations each client attempts per phase.
    pub ops_per_client: usize,
    /// Fault probabilities for the daemon's I/O plane.
    pub profile: FaultProfile,
}

impl TortureConfig {
    /// Derives a trial configuration from its seed: 2–4 clients, 2–3
    /// phases, 20–51 ops per client, transient fault rates of 10k–50k ppm
    /// with a pinch of ENOSPC and connection resets on some seeds.
    pub fn from_seed(seed: u64) -> TortureConfig {
        let mut r = Splitmix(seed ^ 0x7073_7465_7374_5f61);
        let transient = 10_000 + (r.next() % 40_000) as u32;
        let mut profile = FaultProfile::transient(transient);
        // One trial in four injects ENOSPC (rare: each occurrence poisons
        // the WAL until the next restart, so more would starve the phase).
        if r.next().is_multiple_of(4) {
            profile.write_enospc_ppm = 200;
        }
        // One in two injects connection resets.
        if r.next().is_multiple_of(2) {
            profile.conn_reset_ppm = 2_000 + (r.next() % 8_000) as u32;
        }
        TortureConfig {
            seed,
            clients: 2 + (r.next() % 3) as usize,
            phases: 2 + (r.next() % 2) as usize,
            ops_per_client: 20 + (r.next() % 32) as usize,
            profile,
        }
    }
}

/// A passed trial's summary (what the fault plane actually did).
#[derive(Debug)]
pub struct TortureReport {
    /// The trial seed.
    pub seed: u64,
    /// Faults the plan injected across all phases.
    pub injected: u64,
    /// Operations acknowledged across all clients and phases.
    pub acked_ops: u64,
    /// Phases that ended in a mid-work kill.
    pub kills: usize,
}

/// A failed trial: the violation plus everything needed to reproduce it.
#[derive(Debug)]
pub struct TortureFailure {
    /// The trial seed (`TORTURE_SEED=<seed>` reproduces the trial).
    pub seed: u64,
    /// What went wrong.
    pub message: String,
    /// The per-trial fault trace (`site#occurrence: fault`).
    pub fault_trace: Vec<String>,
}

impl std::fmt::Display for TortureFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "torture trial failed: {}", self.message)?;
        writeln!(
            f,
            "reproduce with TORTURE_SEED={} TORTURE_TRIALS=1",
            self.seed
        )?;
        writeln!(f, "fault trace ({} injected):", self.fault_trace.len())?;
        for line in &self.fault_trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// splitmix64 — the same generator the fault plan uses, so the whole trial
/// is a pure function of the seed.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A private PM directory for one trial, removed on drop. (Hand-rolled so
/// the harness lives in the library proper — `tempfile` is only a
/// dev-dependency here.)
struct TrialDir(PathBuf);

impl TrialDir {
    fn new(seed: u64) -> std::io::Result<TrialDir> {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "puddles-torture-{}-{seed:x}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(TrialDir(path))
    }
}

impl Drop for TrialDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Outcome bookkeeping shared by the trial's client threads.
#[derive(Default)]
struct Shadow {
    /// Pools whose creation the daemon acknowledged (and no drop was ever
    /// attempted): must exist after recovery.
    acked_created: BTreeSet<String>,
    /// Pools whose drop was acknowledged: must stay gone.
    acked_dropped: BTreeSet<String>,
    /// Per-client counter state: (highest acked write, highest attempted).
    counters: Vec<(u64, u64)>,
    /// Total acknowledged operations (reporting only).
    acked_ops: u64,
}

/// Runs one client thread's workload for one phase.
#[allow(clippy::too_many_arguments)]
fn client_phase(
    socket: &std::path::Path,
    space: Arc<puddled::GlobalSpace>,
    shadow: &Mutex<Shadow>,
    stop: &AtomicBool,
    client_idx: usize,
    phase: usize,
    ops: usize,
    mut rng: Splitmix,
) {
    // Short per-op deadlines: after a scheduled mid-phase kill every call
    // fails, and the thread must notice `stop` quickly rather than sit out
    // a long backoff schedule.
    let retry = RetryPolicy::new(4, Duration::from_millis(150));
    let Ok(client) = PuddleClient::connect_uds_shared_with_retry(socket, space, retry) else {
        return; // Killed before the phase began; nothing acked, nothing owed.
    };
    let ctr_name = format!("ctr{client_idx}");
    let ctr_pool = client
        .open_or_create_pool(&ctr_name, PoolOptions::default())
        .ok();
    if let Some(pool) = &ctr_pool {
        if pool.root::<TortureCounter>().is_none() {
            let _ = pool.tx(|tx| pool.create_root(tx, TortureCounter { value: 0 }));
        }
    }
    for op in 0..ops {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match rng.next() % 10 {
            // Counter transaction: the data plane under metadata faults.
            0..=4 => {
                let Some(pool) = &ctr_pool else { continue };
                let Some(root) = pool.root::<TortureCounter>() else {
                    continue;
                };
                let next = {
                    let mut sh = shadow.lock().unwrap();
                    let (_, attempted) = &mut sh.counters[client_idx];
                    *attempted += 1;
                    *attempted
                };
                let result = pool.tx(|tx| {
                    let counter = pool.deref_mut(root)?;
                    tx.set(&mut counter.value, next)?;
                    Ok(())
                });
                if result.is_ok() {
                    let mut sh = shadow.lock().unwrap();
                    sh.counters[client_idx].0 = next;
                    sh.acked_ops += 1;
                }
            }
            // Ephemeral pool create (non-idempotent), sometimes dropped
            // again. Names are never reused, so an unacknowledged create
            // can land either way without confusing a later attempt.
            5 | 6 => {
                let name = format!("e{client_idx}_{phase}_{op}");
                if client.create_pool(&name, PoolOptions::default()).is_ok() {
                    let mut sh = shadow.lock().unwrap();
                    sh.acked_created.insert(name.clone());
                    sh.acked_ops += 1;
                    drop(sh);
                    if rng.next().is_multiple_of(2) {
                        let dropped = client.drop_pool(&name).is_ok();
                        let mut sh = shadow.lock().unwrap();
                        // Whether or not the drop was acknowledged, the
                        // pool's fate is no longer "must exist".
                        sh.acked_created.remove(&name);
                        if dropped {
                            sh.acked_dropped.insert(name);
                            sh.acked_ops += 1;
                        }
                    }
                }
            }
            // Idempotent reads: stats, pool open, ping.
            7 => {
                if client.stats().is_ok() {
                    shadow.lock().unwrap().acked_ops += 1;
                }
            }
            8 => {
                let _ = client.open_pool(&ctr_name);
            }
            _ => {
                let _ = client.ping();
            }
        }
    }
}

/// Runs one seeded torture trial.
pub fn run_trial(config: &TortureConfig) -> Result<TortureReport, TortureFailure> {
    let plan = FaultPlan::new(config.seed, config.profile);
    let fail = |message: String| TortureFailure {
        seed: config.seed,
        message,
        fault_trace: plan.trace(),
    };

    let dir = TrialDir::new(config.seed).map_err(|e| fail(format!("trial dir: {e}")))?;
    let daemon_config = DaemonConfig::for_testing(&dir.0).with_fault_plan(Arc::clone(&plan));
    let shadow = Arc::new(Mutex::new(Shadow {
        counters: vec![(0, 0); config.clients],
        ..Shadow::default()
    }));
    let mut rng = Splitmix(config.seed);
    let mut kills = 0usize;

    for phase in 0..config.phases {
        // Faults run only while clients are driving load; recovery and
        // verification read through a quiet I/O plane (module docs).
        plan.set_enabled(false);
        let daemon = Daemon::start(daemon_config.clone())
            .map_err(|e| fail(format!("phase {phase}: daemon start/recovery: {e}")))?;
        plan.set_enabled(true);

        let socket = dir.0.join(format!("torture-{phase}.sock"));
        let mut server = Some(
            UdsServer::start(daemon.clone(), &socket)
                .map_err(|e| fail(format!("phase {phase}: server start: {e}")))?,
        );

        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..config.clients)
            .map(|idx| {
                let socket = socket.clone();
                let space = daemon.global_space();
                let shadow = Arc::clone(&shadow);
                let stop = Arc::clone(&stop);
                let ops = config.ops_per_client;
                let rng = Splitmix(config.seed ^ ((phase as u64) << 32) ^ (idx as u64 + 1));
                std::thread::spawn(move || {
                    client_phase(&socket, space, &shadow, &stop, idx, phase, ops, rng)
                })
            })
            .collect();

        // The kill schedule: some phases chop the daemon down mid-work.
        let kill_after = (!rng.next().is_multiple_of(3)).then(|| 10 + rng.next() % 60);
        if let Some(ms) = kill_after {
            std::thread::sleep(Duration::from_millis(ms));
            stop.store(true, Ordering::Relaxed);
            server = None; // Abrupt: in-flight connections reset.
            kills += 1;
        }
        for worker in workers {
            worker
                .join()
                .map_err(|_| fail(format!("phase {phase}: client thread panicked")))?;
        }
        drop(server);
        drop(daemon);

        // Recovery + the invariant layer, faults quiesced.
        plan.set_enabled(false);
        let daemon = Daemon::start(daemon_config.clone())
            .map_err(|e| fail(format!("phase {phase}: recovery failed: {e}")))?;
        let violations = Invariants::check_all(daemon.registry());
        if !violations.is_empty() {
            return Err(fail(format!(
                "phase {phase}: invariant violations after recovery: {}",
                violations.join("; ")
            )));
        }

        // Committed-or-rolled-back visibility.
        let verifier = PuddleClient::connect_local(&daemon)
            .map_err(|e| fail(format!("phase {phase}: verifier connect: {e}")))?;
        let sh = shadow.lock().unwrap();
        for name in &sh.acked_created {
            if verifier.open_pool(name).is_err() {
                return Err(fail(format!(
                    "phase {phase}: pool {name}: creation was acknowledged but it is gone"
                )));
            }
        }
        for name in &sh.acked_dropped {
            if verifier.open_pool(name).is_ok() {
                return Err(fail(format!(
                    "phase {phase}: pool {name}: drop was acknowledged but it still exists"
                )));
            }
        }
        for (idx, &(acked, attempted)) in sh.counters.iter().enumerate() {
            if acked == 0 {
                continue; // Counter pool may not even exist yet.
            }
            let name = format!("ctr{idx}");
            let pool = verifier.open_pool(&name).map_err(|e| {
                fail(format!(
                    "phase {phase}: counter pool {name} had acked writes but won't open: {e}"
                ))
            })?;
            let Some(root) = pool.root::<TortureCounter>() else {
                return Err(fail(format!(
                    "phase {phase}: counter pool {name} lost its root"
                )));
            };
            let value = pool
                .deref(root)
                .map_err(|e| fail(format!("phase {phase}: counter deref: {e}")))?
                .value;
            if value < acked || value > attempted {
                return Err(fail(format!(
                    "phase {phase}: counter {idx} = {value}, outside \
                     [acked {acked}, attempted {attempted}] — a write was \
                     torn or an acknowledged commit was lost"
                )));
            }
        }
        drop(sh);
    }

    let acked_ops = shadow.lock().unwrap().acked_ops;
    Ok(TortureReport {
        seed: config.seed,
        injected: plan.injected(),
        acked_ops,
        kills,
    })
}

/// Runs `trials` seeded trials (`base_seed + index`) across `threads`
/// worker threads, stealing trial indices from a shared counter so seeds
/// are independent of the thread count. Returns per-trial reports, or the
/// first failure.
pub fn run_sweep(
    base_seed: u64,
    trials: u64,
    threads: u64,
) -> Result<Vec<TortureReport>, TortureFailure> {
    let threads = threads.clamp(1, trials.max(1));
    let next = Arc::new(AtomicU64::new(0));
    let reports: Arc<Mutex<Vec<TortureReport>>> = Arc::new(Mutex::new(Vec::new()));
    let failure: Arc<Mutex<Option<TortureFailure>>> = Arc::new(Mutex::new(None));
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let next = Arc::clone(&next);
            let reports = Arc::clone(&reports);
            let failure = Arc::clone(&failure);
            std::thread::spawn(move || loop {
                let trial = next.fetch_add(1, Ordering::Relaxed);
                if trial >= trials || failure.lock().unwrap().is_some() {
                    return;
                }
                let config = TortureConfig::from_seed(base_seed.wrapping_add(trial));
                match run_trial(&config) {
                    Ok(report) => reports.lock().unwrap().push(report),
                    Err(fail) => *failure.lock().unwrap() = Some(fail),
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("torture sweep worker panicked");
    }
    if let Some(fail) = failure.lock().unwrap().take() {
        return Err(fail);
    }
    let mut reports = Arc::try_unwrap(reports)
        .expect("workers joined")
        .into_inner()
        .unwrap();
    reports.sort_by_key(|r| r.seed);
    Ok(reports)
}

/// Reads a `u64` environment knob (`TORTURE_SEED`, `TORTURE_TRIALS`, ...).
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
