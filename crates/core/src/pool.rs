//! Pools: named collections of puddles with a single allocation interface
//! (§3.1, §4.4).
//!
//! Programmers allocate from a pool with a `malloc()`-like API and never
//! manage individual puddles: the pool requests new puddles from the daemon
//! when it runs out of space, maps member puddles on demand (the explicit
//! stand-in for the paper's page-fault-driven mapping), and exposes the
//! pool's *root object* stored in the root puddle.

use crate::alloc::MetaLogger;
use crate::client::ClientInner;
use crate::error::{Error, Result};
use crate::ptr::PmPtr;
use crate::puddle::MappedPuddle;
use crate::tx::Transaction;
use crate::types::PmType;
use parking_lot::Mutex;
use puddles_pmem::persist;
use puddles_pmem::util::align_up;
use puddles_pmem::PAGE_SIZE;
use puddles_proto::{PoolInfo, PuddleId, PuddleInfo, PuddlePurpose, Request, Response};
use std::collections::HashMap;
use std::sync::Arc;

/// Options controlling pool creation and growth.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Size of each puddle the pool allocates (bytes).
    pub puddle_size: u64,
    /// UNIX-like permission bits for the pool's puddles.
    pub mode: u32,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            puddle_size: 8 << 20,
            mode: 0o600,
        }
    }
}

impl PoolOptions {
    /// Sets the per-puddle size.
    pub fn puddle_size(mut self, bytes: u64) -> Self {
        self.puddle_size = bytes;
        self
    }

    /// Sets the permission bits.
    pub fn mode(mut self, mode: u32) -> Self {
        self.mode = mode;
        self
    }
}

struct PoolState {
    info: PoolInfo,
    infos: HashMap<PuddleId, PuddleInfo>,
    mapped: HashMap<PuddleId, Arc<MappedPuddle>>,
    /// Index (into `info.puddles`) of the puddle that satisfied the last
    /// allocation; tried first for the next one.
    alloc_cursor: usize,
}

/// An open pool.
pub struct Pool {
    client: Arc<ClientInner>,
    options: PoolOptions,
    state: Mutex<PoolState>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("Pool")
            .field("name", &state.info.name)
            .field("puddles", &state.info.puddles.len())
            .field("mapped", &state.mapped.len())
            .finish()
    }
}

impl Pool {
    pub(crate) fn from_info(
        client: Arc<ClientInner>,
        info: PoolInfo,
        options: PoolOptions,
    ) -> Result<Pool> {
        let root = info.root_puddle;
        let pool = Pool {
            client,
            options,
            state: Mutex::new(PoolState {
                info,
                infos: HashMap::new(),
                mapped: HashMap::new(),
                alloc_cursor: 0,
            }),
        };
        // The root puddle is mapped eagerly: it holds the root object and is
        // the entry point for on-demand mapping of the rest of the pool.
        pool.map_puddle(root)?;
        Ok(pool)
    }

    /// The pool's name.
    pub fn name(&self) -> String {
        self.state.lock().info.name.clone()
    }

    /// Number of puddles currently in the pool.
    pub fn puddle_count(&self) -> usize {
        self.state.lock().info.puddles.len()
    }

    /// Number of puddles currently mapped into this process.
    pub fn mapped_count(&self) -> usize {
        self.state.lock().mapped.len()
    }

    /// Runs a failure-atomic transaction (convenience wrapper around
    /// [`crate::PuddleClient::tx`]; the transaction may also touch other
    /// pools).
    pub fn tx<R>(&self, body: impl FnOnce(&mut Transaction<'_>) -> Result<R>) -> Result<R> {
        crate::tx::run_tx(&self.client, body)
    }

    fn puddle_info(&self, id: PuddleId) -> Result<PuddleInfo> {
        {
            let state = self.state.lock();
            if let Some(info) = state.infos.get(&id) {
                return Ok(info.clone());
            }
        }
        let info = self.client.get_puddle(id)?;
        self.state.lock().infos.insert(id, info.clone());
        Ok(info)
    }

    /// Maps a member puddle (idempotent), returning its handle.
    pub fn map_puddle(&self, id: PuddleId) -> Result<Arc<MappedPuddle>> {
        {
            let state = self.state.lock();
            if let Some(p) = state.mapped.get(&id) {
                return Ok(Arc::clone(p));
            }
        }
        let info = self.puddle_info(id)?;
        let mapped = MappedPuddle::map(Arc::clone(&self.client), info)?;
        let mut state = self.state.lock();
        let entry = state
            .mapped
            .entry(id)
            .or_insert_with(|| Arc::clone(&mapped));
        Ok(Arc::clone(entry))
    }

    /// Maps every puddle in the pool (pre-faulting; hot loops that
    /// dereference [`PmPtr`] directly call this once instead of paying an
    /// `ensure_mapped` check per access).
    pub fn ensure_all_mapped(&self) -> Result<()> {
        let ids: Vec<PuddleId> = self.state.lock().info.puddles.clone();
        for id in ids {
            self.map_puddle(id)?;
        }
        Ok(())
    }

    /// The root puddle of the pool.
    pub fn root_puddle(&self) -> Arc<MappedPuddle> {
        let root = self.state.lock().info.root_puddle;
        self.map_puddle(root)
            .expect("root puddle was mapped at open")
    }

    /// Returns the pool's root object pointer, or `None` if no root has been
    /// created yet.
    pub fn root<T: PmType>(&self) -> Option<PmPtr<T>> {
        let root = self.root_puddle();
        let off = root.root_offset();
        if off == 0 {
            None
        } else {
            Some(PmPtr::from_addr(root.addr() as u64 + off))
        }
    }

    /// Allocates the pool's root object inside the root puddle and records
    /// it in the puddle header.
    pub fn create_root<T: PmType>(&self, tx: &mut Transaction<'_>, value: T) -> Result<PmPtr<T>> {
        self.client.register_type::<T>()?;
        let root = self.root_puddle();
        if !root.writable() {
            return Err(Error::Corruption("root puddle is read-only".into()));
        }
        let addr = root
            .alloc()
            .alloc(std::mem::size_of::<T>().max(1), T::type_id(), tx)?;
        // SAFETY: `addr` is a fresh allocation of at least `size_of::<T>()`
        // bytes inside a writable mapping.
        unsafe { std::ptr::write(addr as *mut T, value) };
        persist::persist(addr as *const u8, std::mem::size_of::<T>());
        root.set_root_offset((addr - root.addr()) as u64, tx)?;
        Ok(PmPtr::from_addr(addr as u64))
    }

    /// Allocates and initializes an object of type `T` (the pool's typed
    /// `malloc`), returning a native pointer to it.
    pub fn alloc_value<T: PmType>(&self, tx: &mut Transaction<'_>, value: T) -> Result<PmPtr<T>> {
        self.client.register_type::<T>()?;
        let addr = self.alloc_raw(tx, std::mem::size_of::<T>().max(1), T::type_id())?;
        // SAFETY: fresh allocation of the right size in a writable mapping.
        unsafe { std::ptr::write(addr as *mut T, value) };
        persist::persist(addr as *const u8, std::mem::size_of::<T>());
        Ok(PmPtr::from_addr(addr as u64))
    }

    /// Allocates `size` bytes tagged with `type_id` (the pool's raw
    /// `malloc`), growing the pool with a fresh puddle if necessary.
    pub fn alloc_raw(&self, tx: &mut Transaction<'_>, size: usize, type_id: u64) -> Result<usize> {
        let (ids, cursor) = {
            let state = self.state.lock();
            (state.info.puddles.clone(), state.alloc_cursor)
        };
        let n = ids.len();
        for step in 0..n {
            let idx = (cursor + step) % n;
            let puddle = self.map_puddle(ids[idx])?;
            if !puddle.writable() {
                continue;
            }
            match puddle.alloc().alloc(size, type_id, tx) {
                Ok(addr) => {
                    self.state.lock().alloc_cursor = idx;
                    return Ok(addr);
                }
                Err(Error::OutOfMemory(_)) => continue,
                Err(e) => return Err(e),
            }
        }
        // Grow the pool: acquire a new puddle sized for the allocation.
        let puddle_size = self
            .options
            .puddle_size
            .max(align_up(size + 64 * 1024, PAGE_SIZE) as u64);
        let name = self.name();
        let info = match self.client.call(&Request::CreatePuddle {
            size: puddle_size,
            pool: Some(name.clone()),
            purpose: PuddlePurpose::Data,
            mode: self.options.mode,
        })? {
            Response::Puddle(info) => info,
            other => return Err(Error::UnexpectedResponse(format!("{other:?}"))),
        };
        {
            let mut state = self.state.lock();
            state.info.puddles.push(info.id);
            state.infos.insert(info.id, info.clone());
            state.alloc_cursor = state.info.puddles.len() - 1;
        }
        let puddle = self.map_puddle(info.id)?;
        puddle.alloc().alloc(size, type_id, tx)
    }

    /// Frees an object previously allocated from this pool.
    pub fn dealloc<T>(&self, tx: &mut Transaction<'_>, ptr: PmPtr<T>) -> Result<()> {
        self.free_raw(tx, ptr.addr() as usize)
    }

    /// Frees a raw allocation previously returned by [`Pool::alloc_raw`].
    pub fn free_raw(&self, tx: &mut Transaction<'_>, addr: usize) -> Result<()> {
        let puddle = self
            .puddle_containing(addr)?
            .ok_or(Error::InvalidAddress(addr as u64))?;
        puddle.alloc().dealloc(addr, tx)
    }

    /// Ensures the puddle containing `addr` is mapped (the explicit
    /// equivalent of the paper's fault-driven frontier mapping), returning
    /// an error if the address belongs to no member puddle.
    pub fn ensure_mapped(&self, addr: u64) -> Result<()> {
        self.puddle_containing(addr as usize)?
            .map(|_| ())
            .ok_or(Error::InvalidAddress(addr))
    }

    /// Finds (mapping on demand) the member puddle containing `addr`.
    pub fn puddle_containing(&self, addr: usize) -> Result<Option<Arc<MappedPuddle>>> {
        // Fast path: already mapped.
        {
            let state = self.state.lock();
            for p in state.mapped.values() {
                if p.contains(addr) {
                    return Ok(Some(Arc::clone(p)));
                }
            }
        }
        // Slow path: consult puddle metadata and map on demand.
        let ids: Vec<PuddleId> = self.state.lock().info.puddles.clone();
        for id in ids {
            let info = self.puddle_info(id)?;
            let start = info.assigned_addr as usize;
            if addr >= start && addr < start + info.size as usize {
                return Ok(Some(self.map_puddle(id)?));
            }
        }
        Ok(None)
    }

    /// Dereferences a persistent pointer, mapping its puddle if needed.
    pub fn deref<T>(&self, ptr: PmPtr<T>) -> Result<&T> {
        if ptr.is_null() {
            return Err(Error::InvalidAddress(0));
        }
        self.ensure_mapped(ptr.addr())?;
        // SAFETY: the target puddle is mapped (checked above) and the
        // address was produced by this pool's allocator for a `T`.
        Ok(unsafe { ptr.as_ref() })
    }

    /// Mutably dereferences a persistent pointer, mapping its puddle if
    /// needed. The caller is responsible for undo-logging the object before
    /// modifying it.
    #[allow(clippy::mut_from_ref)]
    pub fn deref_mut<T>(&self, ptr: PmPtr<T>) -> Result<&mut T> {
        if ptr.is_null() {
            return Err(Error::InvalidAddress(0));
        }
        self.ensure_mapped(ptr.addr())?;
        // SAFETY: as in `deref`, plus pool puddles are mapped writable when
        // the credentials allow it; aliasing discipline is the caller's.
        Ok(unsafe { ptr.as_mut() })
    }

    /// Total free bytes across the currently mapped puddles.
    pub fn free_bytes(&self) -> usize {
        let state = self.state.lock();
        state.mapped.values().map(|p| p.alloc().free_bytes()).sum()
    }

    /// Records `logger`-visible metadata for tests; returns every live
    /// object in the mapped puddles.
    pub fn live_objects(&self) -> Vec<crate::alloc::ObjRef> {
        let state = self.state.lock();
        let mut out = Vec::new();
        for p in state.mapped.values() {
            out.extend(p.alloc().walk());
        }
        out
    }
}

/// Blanket helper so `&mut Transaction` can be passed where a `MetaLogger`
/// is expected without an explicit cast at call sites inside this crate.
impl<'a> MetaLogger for &mut Transaction<'a> {
    fn log_range(&mut self, addr: usize, len: usize) -> Result<()> {
        (**self).log_range(addr, len)
    }
}
