//! YCSB workload mixes A–G and request-stream generation.

use crate::generator::{seeded_rng, KeyGenerator, ZipfianGenerator};
use rand::Rng;

/// One key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operation {
    /// Read one record.
    Read,
    /// Overwrite one record.
    Update,
    /// Insert a new record.
    Insert,
    /// Read a short range of records starting at the key.
    Scan,
    /// Read-modify-write one record.
    ReadModifyWrite,
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// The operation to perform.
    pub op: Operation,
    /// The key index the operation targets.
    pub key: u64,
    /// Scan length (only meaningful for [`Operation::Scan`]).
    pub scan_len: u64,
}

/// The standard YCSB workload letters plus the paper's G.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// 50% read / 50% update, zipfian.
    A,
    /// 95% read / 5% update, zipfian.
    B,
    /// 100% read, zipfian.
    C,
    /// 95% read / 5% insert, latest.
    D,
    /// 95% scan / 5% insert, zipfian.
    E,
    /// 50% read / 50% read-modify-write, zipfian.
    F,
    /// Write-heavy: 100% update, zipfian (not defined by YCSB or the paper;
    /// our stand-in for the paper's seventh workload).
    G,
}

impl Workload {
    /// All workloads in the order the paper plots them.
    pub const ALL: [Workload; 7] = [
        Workload::A,
        Workload::B,
        Workload::C,
        Workload::D,
        Workload::E,
        Workload::F,
        Workload::G,
    ];

    /// The workload letter as a string.
    pub fn name(self) -> &'static str {
        match self {
            Workload::A => "A",
            Workload::B => "B",
            Workload::C => "C",
            Workload::D => "D",
            Workload::E => "E",
            Workload::F => "F",
            Workload::G => "G",
        }
    }

    /// The operation mix and key distribution for this workload.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            Workload::A => WorkloadSpec {
                read: 0.5,
                update: 0.5,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                latest: false,
            },
            Workload::B => WorkloadSpec {
                read: 0.95,
                update: 0.05,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                latest: false,
            },
            Workload::C => WorkloadSpec {
                read: 1.0,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                latest: false,
            },
            Workload::D => WorkloadSpec {
                read: 0.95,
                update: 0.0,
                insert: 0.05,
                scan: 0.0,
                rmw: 0.0,
                latest: true,
            },
            Workload::E => WorkloadSpec {
                read: 0.0,
                update: 0.0,
                insert: 0.05,
                scan: 0.95,
                rmw: 0.0,
                latest: false,
            },
            Workload::F => WorkloadSpec {
                read: 0.5,
                update: 0.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.5,
                latest: false,
            },
            Workload::G => WorkloadSpec {
                read: 0.0,
                update: 1.0,
                insert: 0.0,
                scan: 0.0,
                rmw: 0.0,
                latest: false,
            },
        }
    }

    /// Generates `count` requests over an initial keyspace of
    /// `record_count` records, using a fixed seed for reproducibility.
    pub fn generate(self, record_count: u64, count: usize, seed: u64) -> Vec<Request> {
        let spec = self.spec();
        let mut rng = seeded_rng(seed ^ (self as u64) << 32);
        let keygen = if spec.latest {
            KeyGenerator::Latest(ZipfianGenerator::new(record_count))
        } else {
            KeyGenerator::Zipfian(ZipfianGenerator::new(record_count))
        };
        let mut records = record_count;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let p: f64 = rng.gen();
            let (op, key) = if p < spec.read {
                (Operation::Read, keygen.next(&mut rng, records))
            } else if p < spec.read + spec.update {
                (Operation::Update, keygen.next(&mut rng, records))
            } else if p < spec.read + spec.update + spec.rmw {
                (Operation::ReadModifyWrite, keygen.next(&mut rng, records))
            } else if p < spec.read + spec.update + spec.rmw + spec.scan {
                (Operation::Scan, keygen.next(&mut rng, records))
            } else {
                let key = records;
                records += 1;
                (Operation::Insert, key)
            };
            out.push(Request {
                op,
                key,
                scan_len: 1 + (rng.gen::<u64>() % 100),
            });
        }
        out
    }
}

/// Operation mix of one workload (fractions sum to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Fraction of reads.
    pub read: f64,
    /// Fraction of updates.
    pub update: f64,
    /// Fraction of inserts.
    pub insert: f64,
    /// Fraction of scans.
    pub scan: f64,
    /// Fraction of read-modify-writes.
    pub rmw: f64,
    /// Whether the key distribution favours recently inserted keys.
    pub latest: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fraction(reqs: &[Request], op: Operation) -> f64 {
        reqs.iter().filter(|r| r.op == op).count() as f64 / reqs.len() as f64
    }

    #[test]
    fn workload_mixes_match_their_specs() {
        for wl in Workload::ALL {
            let reqs = wl.generate(10_000, 50_000, 42);
            let spec = wl.spec();
            assert!(
                (fraction(&reqs, Operation::Read) - spec.read).abs() < 0.02,
                "{wl:?} read"
            );
            assert!(
                (fraction(&reqs, Operation::Update) - spec.update).abs() < 0.02,
                "{wl:?} update"
            );
            assert!(
                (fraction(&reqs, Operation::Scan) - spec.scan).abs() < 0.02,
                "{wl:?} scan"
            );
            assert!(
                (fraction(&reqs, Operation::ReadModifyWrite) - spec.rmw).abs() < 0.02,
                "{wl:?} rmw"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Workload::A.generate(1000, 1000, 7);
        let b = Workload::A.generate(1000, 1000, 7);
        let c = Workload::A.generate(1000, 1000, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn inserts_extend_the_keyspace() {
        let reqs = Workload::D.generate(1000, 10_000, 1);
        let max_insert = reqs
            .iter()
            .filter(|r| r.op == Operation::Insert)
            .map(|r| r.key)
            .max()
            .unwrap();
        assert!(max_insert >= 1000);
        // All keys stay within the (possibly grown) keyspace.
        let inserts = reqs.iter().filter(|r| r.op == Operation::Insert).count() as u64;
        assert!(reqs.iter().all(|r| r.key < 1000 + inserts));
    }

    #[test]
    fn workload_c_is_read_only() {
        let reqs = Workload::C.generate(1000, 5_000, 3);
        assert!(reqs.iter().all(|r| r.op == Operation::Read));
    }
}
