//! YCSB-style workload generator (Cooper et al., SoCC'10) used by the
//! paper's Fig. 11 KV-store evaluation.
//!
//! Provides the standard key-request distributions (zipfian, uniform,
//! latest) and the workload mixes A–F, plus the paper's additional workload
//! G, which the paper does not define; we model it as a write-heavy,
//! 100%-update mix (documented in DESIGN.md).

pub mod generator;
pub mod workload;

pub use generator::{KeyGenerator, ZipfianGenerator};
pub use workload::{Operation, Request, Workload, WorkloadSpec};
