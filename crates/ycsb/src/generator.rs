//! Key-selection distributions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The zipfian constant used by standard YCSB.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// A Gray et al. "Quickly generating billion-record synthetic databases"
/// zipfian generator over `[0, n)`, as used by YCSB.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    items: u64,
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
}

impl ZipfianGenerator {
    /// Creates a generator over `[0, items)`.
    pub fn new(items: u64) -> Self {
        assert!(items > 0);
        let theta = ZIPFIAN_CONSTANT;
        let zeta_n = Self::zeta(items, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        ZipfianGenerator {
            items,
            theta,
            zeta_n,
            alpha,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact up to a bound, then the standard integral approximation —
        // keeps construction O(1)-ish even for millions of keys.
        const EXACT: u64 = 100_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT {
            // ∫ x^-theta dx from EXACT to n.
            sum +=
                ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Draws the next zipfian-distributed value in `[0, items)`.
    pub fn next<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let value = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        value.min(self.items - 1)
    }

    /// Number of items the generator draws from.
    pub fn items(&self) -> u64 {
        self.items
    }
}

/// How keys are chosen for requests.
#[derive(Debug, Clone)]
pub enum KeyGenerator {
    /// Uniformly random over the key space.
    Uniform,
    /// Zipfian-skewed (the YCSB default).
    Zipfian(ZipfianGenerator),
    /// Skewed toward the most recently inserted keys (workload D).
    Latest(ZipfianGenerator),
}

impl KeyGenerator {
    /// Creates the generator for `record_count` keys.
    pub fn zipfian(record_count: u64) -> Self {
        KeyGenerator::Zipfian(ZipfianGenerator::new(record_count))
    }

    /// Draws a key index given the current number of records.
    pub fn next<R: Rng>(&self, rng: &mut R, record_count: u64) -> u64 {
        match self {
            KeyGenerator::Uniform => rng.gen_range(0..record_count.max(1)),
            KeyGenerator::Zipfian(z) => z.next(rng).min(record_count.saturating_sub(1)),
            KeyGenerator::Latest(z) => {
                let offset = z.next(rng);
                record_count.saturating_sub(1).saturating_sub(offset)
            }
        }
    }
}

/// Deterministic RNG for reproducible request streams.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_values_are_in_range_and_skewed() {
        let gen = ZipfianGenerator::new(1000);
        let mut rng = seeded_rng(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..100_000 {
            let v = gen.next(&mut rng);
            assert!(v < 1000);
            counts[v as usize] += 1;
        }
        // Head of the distribution is much hotter than the tail.
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[990..].iter().sum();
        assert!(head > 20 * tail.max(1), "head={head} tail={tail}");
    }

    #[test]
    fn uniform_covers_the_space_roughly_evenly() {
        let gen = KeyGenerator::Uniform;
        let mut rng = seeded_rng(2);
        let mut counts = vec![0u32; 100];
        for _ in 0..100_000 {
            counts[gen.next(&mut rng, 100) as usize] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(*min > 700 && *max < 1300, "min={min} max={max}");
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let gen = KeyGenerator::Latest(ZipfianGenerator::new(1000));
        let mut rng = seeded_rng(3);
        let mut newer_half = 0;
        for _ in 0..10_000 {
            if gen.next(&mut rng, 1000) >= 500 {
                newer_half += 1;
            }
        }
        assert!(newer_half > 8_000, "newer_half={newer_half}");
    }

    #[test]
    fn zipfian_handles_large_keyspaces() {
        let gen = ZipfianGenerator::new(10_000_000);
        let mut rng = seeded_rng(4);
        for _ in 0..1000 {
            assert!(gen.next(&mut rng) < 10_000_000);
        }
    }
}
