//! In-workspace stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a small self-contained serialization framework with serde's spelling:
//! [`Serialize`] / [`Deserialize`] traits, `#[derive(Serialize,
//! Deserialize)]` (from the sibling `serde_derive` proc-macro crate), and a
//! [`de::DeserializeOwned`] alias. Unlike real serde it is not a streaming
//! framework: values serialize into a [`Value`] tree which `serde_json`
//! renders as text. Integers are kept exact up to 128 bits (registry offsets
//! and id salts exceed `f64`'s 53-bit integer range).
//!
//! JSON shapes match serde's external-tagging conventions, so documents
//! written by a real-serde build would parse identically: structs are maps,
//! unit enum variants are strings, and data-carrying variants are
//! single-entry maps keyed by the variant name.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialized value (the JSON data model with exact
/// integers).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u128),
    /// A negative integer (always < 0; non-negative integers use `UInt`).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Returns the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message (serde's
    /// `de::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produces the serialized form.
    fn serialize(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses the value.
    fn deserialize(v: &Value) -> Result<Self, Error>;

    /// Called when a struct field with this type is absent from the map.
    /// `Option` fields treat absence as `None`; everything else errors.
    fn deserialize_missing(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// Deserializer-side re-exports, mirroring `serde::de`.
pub mod de {
    pub use crate::Error;

    /// Types deserializable without borrowing from the input (every type
    /// here — the value tree owns its data).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serializer-side re-exports, mirroring `serde::ser`.
pub mod ser {
    pub use crate::Error;
}

/// Looks up `key` in a struct map and deserializes it; absence is delegated
/// to [`Deserialize::deserialize_missing`]. Used by derived code.
#[doc(hidden)]
pub fn __field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => T::deserialize_missing(key),
    }
}

/// Like [`__field`], but absence falls back to `Default::default()` — the
/// `#[serde(default)]` field attribute. Lets schemas grow new fields
/// without breaking decode of frames written by older peers.
#[doc(hidden)]
pub fn __field_or_default<T: Deserialize + Default>(
    map: &[(String, Value)],
    key: &str,
) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::deserialize(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

// Identity impls: (de)serializing the dynamic tree itself, as real serde
// does for `serde_json::Value` — used by tests and generic plumbing that
// want the untyped representation.
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: u128 = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u128,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                if *self >= 0 {
                    Value::UInt(*self as u128)
                } else {
                    Value::Int(*self as i128)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n: i128 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i128::try_from(*n).map_err(|_| {
                        Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, got {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }

    fn deserialize_missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {got}")))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($idx),+].len();
                let seq = v.as_seq().ok_or_else(|| {
                    Error::custom(format!("expected {ARITY}-tuple array, got {}", v.kind()))
                })?;
                if seq.len() != ARITY {
                    return Err(Error::custom(format!(
                        "expected {ARITY}-tuple, got {} elements",
                        seq.len()
                    )));
                }
                Ok(($($name::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly_at_64_bits() {
        let v = u64::MAX.serialize();
        assert_eq!(u64::deserialize(&v).unwrap(), u64::MAX);
        let v = i64::MIN.serialize();
        assert_eq!(i64::deserialize(&v).unwrap(), i64::MIN);
        assert!(u32::deserialize(&(1u128 << 40).serialize()).is_err());
    }

    #[test]
    fn option_absence_is_none() {
        let map: Vec<(String, Value)> = vec![];
        let missing: Option<u64> = __field(&map, "nope").unwrap();
        assert_eq!(missing, None);
        let present: Result<u64, _> = __field(&map, "nope");
        assert!(present.is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2u64), (3, 4)];
        assert_eq!(Vec::<(u64, u64)>::deserialize(&v.serialize()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        assert_eq!(
            BTreeMap::<String, u32>::deserialize(&m.serialize()).unwrap(),
            m
        );
    }
}
