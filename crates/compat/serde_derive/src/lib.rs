//! `#[derive(Serialize, Deserialize)]` for the in-workspace serde stand-in.
//!
//! Implemented directly on `proc_macro` token trees (the build environment
//! has no `syn`/`quote`). Supports the shapes this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (serialized as the inner value when 1-field, else an
//!   array),
//! * unit structs,
//! * enums whose variants are unit, newtype, tuple, or struct-like
//!   (serde's externally tagged representation),
//! * the `#[serde(default)]` field attribute: a field absent from the
//!   decoded map falls back to `Default::default()` instead of erroring,
//!   so wire schemas can grow fields without breaking older peers.
//!
//! Generics are not supported; deriving on a generic type is a compile
//! error. Generated code never names field types — it relies on inference
//! through `serde::__field` and `serde::Deserialize::deserialize`, which
//! keeps the parser to "names and arities" only.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// `#[serde(default)]`: absence on decode yields `Default::default()`.
    default: bool,
}

enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`, including doc comments) starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Scans attributes starting at `i` like [`skip_attrs`], additionally
/// reporting whether any of them is `#[serde(default)]`.
fn scan_field_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if id.to_string() == "serde"
                        && args.delimiter() == Delimiter::Parenthesis
                        && args.stream().into_iter().any(
                            |t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"),
                        )
                    {
                        default = true;
                    }
                }
                i += 2;
            }
            _ => break,
        }
    }
    (i, default)
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Counts top-level (angle-depth 0) comma-separated items in a token list.
/// Groups are atomic tokens, so only `<`/`>` need depth tracking.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    let mut depth = 0i32;
    let mut items = 0usize;
    let mut has_content = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                has_content = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                has_content = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                items += 1;
                has_content = false;
            }
            _ => has_content = true,
        }
    }
    if has_content {
        items += 1;
    }
    items
}

/// Parses `name: Type, ...` named-field lists (types are skipped).
fn parse_named_fields(group: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < group.len() {
        let (next, default) = scan_field_attrs(group, i);
        i = next;
        if i >= group.len() {
            break;
        }
        i = skip_vis(group, i);
        let name = match group.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match group.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-depth 0.
        let mut depth = 0i32;
        while i < group.len() {
            match &group[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Parses enum variants.
fn parse_variants(group: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attrs(group, i);
        if i >= group.len() {
            break;
        }
        let name = match group.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantFields::Named(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                VariantFields::Tuple(count_top_level_items(&inner))
            }
            _ => VariantFields::Unit,
        };
        match group.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "discriminants are not supported (variant `{name}`)"
                ))
            }
            other => {
                return Err(format!(
                    "expected `,` after variant `{name}`, found {other:?}"
                ))
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let is_enum = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => false,
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => true,
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "derive on generic type `{name}` is not supported by the in-workspace serde"
            ));
        }
    }
    let kind = if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::Enum(parse_variants(&inner)?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::NamedStruct(parse_named_fields(&inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Kind::TupleStruct(count_top_level_items(&inner))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => return Err(format!("expected struct body, found {other:?}")),
        }
    };
    Ok(Input { name, kind })
}

fn named_fields_to_value(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from("{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new(); ");
    for f in fields {
        let n = &f.name;
        out.push_str(&format!(
            "__fields.push((::std::string::ToString::to_string({n:?}), ::serde::Serialize::serialize(&{access_prefix}{n}))); "
        ));
    }
    out.push_str("::serde::Value::Map(__fields) }");
    out
}

fn named_fields_from_map(ty: &str, fields: &[Field], map_expr: &str) -> String {
    let mut out = format!("{{ let __map = {map_expr}; Ok({ty} {{ ");
    for f in fields {
        let n = &f.name;
        let lookup = if f.default {
            "__field_or_default"
        } else {
            "__field"
        };
        out.push_str(&format!("{n}: ::serde::{lookup}(__map, {n:?})?, "));
    }
    out.push_str("}) }");
    out
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => named_fields_to_value(fields, "self."),
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::ToString::to_string({vn:?})), "
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![(::std::string::ToString::to_string({vn:?}), {inner})]), ",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_fields_to_value(fields, "*");
                        // Bound names are references; `*` deref in the
                        // prefix gives `&**` via auto-ref — serialize takes
                        // them by reference anyway, so bind and pass as-is.
                        let inner = inner.replace("&*", "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::ToString::to_string({vn:?}), {inner})]), ",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
             fn serialize(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let build = named_fields_from_map(
                name,
                fields,
                &format!(
                    "__v.as_map().ok_or_else(|| ::serde::Error::custom(\
                         format!(\"expected object for {name}, got {{}}\", __v.kind())))?"
                ),
            );
            build
        }
        Kind::UnitStruct => format!("{{ let _ = __v; Ok({name}) }}"),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                .collect();
            format!(
                "{{ let __seq = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?; \
                   if __seq.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }} \
                   Ok({name}({items})) }}",
                items = items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}), "));
                        // Also accept the map form `{"Variant": null}`.
                        data_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}), "));
                    }
                    VariantFields::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("Ok({name}::{vn}(::serde::Deserialize::deserialize(__inner)?))")
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __seq = __inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vn}\"))?; \
                                   if __seq.len() != {n} {{ return Err(::serde::Error::custom(\"wrong arity for {name}::{vn}\")); }} \
                                   Ok({name}::{vn}({items})) }}",
                                items = items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("{vn:?} => {build}, "));
                    }
                    VariantFields::Named(fields) => {
                        let build = named_fields_from_map(
                            &format!("{name}::{vn}"),
                            fields,
                            &format!(
                                "__inner.as_map().ok_or_else(|| ::serde::Error::custom(\
                                     \"expected object for {name}::{vn}\"))?"
                            ),
                        );
                        data_arms.push_str(&format!("{vn:?} => {build}, "));
                    }
                }
            }
            format!(
                "match __v {{ \
                     ::serde::Value::Str(__s) => match __s.as_str() {{ \
                         {unit_arms} \
                         __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))), \
                     }}, \
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{ \
                         let (__tag, __inner) = &__m[0]; \
                         let _ = __inner; \
                         match __tag.as_str() {{ \
                             {data_arms} \
                             __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))), \
                         }} \
                     }}, \
                     __other => Err(::serde::Error::custom(format!(\"expected {name} enum, got {{}}\", __other.kind()))), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn deserialize(__v: &::serde::Value) -> ::core::result::Result<{name}, ::serde::Error> {{ {body} }} \
         }}"
    )
    .parse()
    .unwrap()
}
