//! In-workspace stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small subset of `parking_lot`'s API the workspace uses — `Mutex` and
//! `RwLock` whose guards are returned without a poisoning `Result` — on top
//! of `std::sync`. Poisoned locks are recovered (the protected data in this
//! codebase is always valid or rebuilt on recovery, matching parking_lot's
//! no-poisoning semantics).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
