//! In-workspace stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use: [`Criterion`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a simple
//! warm-up + timed-batch loop reporting mean ns/iter — enough to compare
//! configurations locally, without criterion's statistics machinery.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark, printing a mean-ns/iter summary line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            budget: self.measurement_time,
            samples: self.sample_size,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "bench: {name:<40} {:>12.1} ns/iter ({} iters)",
            bencher.mean_ns, bencher.iters
        );
        self
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    warm_up: Duration,
    budget: Duration,
    samples: usize,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measures `routine`, running it repeatedly for the configured budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((self.budget.as_nanos() as f64 / self.samples as f64 / per_iter.max(1.0))
            as u64)
            .max(1);
        let mut total_ns = 0f64;
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += batch;
        }
        self.mean_ns = total_ns / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
    }
}
