//! In-workspace stand-in for the `tempfile` crate.
//!
//! Provides [`tempdir`]/[`TempDir`]: a uniquely named directory under the
//! system temp dir that is removed (recursively) when the handle is dropped.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A temporary directory, deleted recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh temporary directory under the system temp dir.
    pub fn new() -> io::Result<TempDir> {
        tempdir()
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Persists the directory (it will not be deleted) and returns its path.
    pub fn keep(self) -> PathBuf {
        let path = self.path.clone();
        std::mem::forget(self);
        path
    }

    /// Deletes the directory now, reporting errors (drop ignores them).
    pub fn close(self) -> io::Result<()> {
        let path = self.path.clone();
        std::mem::forget(self);
        std::fs::remove_dir_all(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// Creates a fresh uniquely named temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let base = std::env::temp_dir();
    let pid = std::process::id();
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    // Retry with a fresh counter value on collision (concurrent tests).
    for _ in 0..1024 {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!(".tmp-puddles-{pid}-{nanos:x}-{n}"));
        match std::fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::other("could not create unique temp dir"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_is_created_and_removed() {
        let dir = tempdir().unwrap();
        let path = dir.path().to_path_buf();
        assert!(path.is_dir());
        std::fs::write(path.join("f"), b"x").unwrap();
        drop(dir);
        assert!(!path.exists());
    }

    #[test]
    fn tempdirs_are_unique() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
