//! In-workspace mio-style readiness poller over Linux `epoll`.
//!
//! The build environment has no crates.io access, so this crate vendors the
//! minimal reactor substrate the daemon needs (see `puddled::uds`):
//!
//! * [`Poller`] — an `epoll` instance: register file descriptors with a
//!   `u64` token and an [`Interest`] (readable / writable), in **level**- or
//!   **edge**-triggered mode, then [`Poller::wait`] for [`Event`]s;
//! * [`Waker`] — an `eventfd`-backed cross-thread wakeup: any thread calls
//!   [`Waker::wake`] and the poller's `wait` returns with the waker's
//!   token; the poll loop calls [`Waker::drain`] to reset it.
//!
//! The API is deliberately tiny — exactly what a single-threaded event loop
//! with a worker pool needs — and every call is a thin wrapper over one
//! syscall.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness classes a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd becomes readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn epoll_bits(self, edge: bool) -> u32 {
        let mut bits = 0;
        if self.readable {
            // RDHUP rides with read interest only: a registration that
            // masked reads (backpressure) must not keep being woken by a
            // level-triggered half-close it is not going to act on — that
            // would spin the poll loop until reads resume.
            bits |= libc::EPOLLIN | libc::EPOLLRDHUP;
        }
        if self.writable {
            bits |= libc::EPOLLOUT;
        }
        if edge {
            bits |= libc::EPOLLET;
        }
        bits
    }
}

/// One readiness notification returned by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable (includes peer hangup: a read will not block).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The kernel reported an error condition or hangup on the fd.
    pub error: bool,
}

fn cvt(rc: libc::c_int) -> io::Result<libc::c_int> {
    if rc < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(rc)
    }
}

/// An `epoll` instance. Registrations are keyed by fd (the kernel's
/// semantics); the caller supplies a token that comes back in every event.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a new poller.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no preconditions.
        let epfd = cvt(unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: libc::c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = libc::epoll_event { events, u64: token };
        // SAFETY: `ev` is a valid epoll_event for the duration of the call;
        // the kernel ignores it for EPOLL_CTL_DEL.
        cvt(unsafe { libc::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` for **level-triggered** readiness with `token`.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, interest.epoll_bits(false), token)
    }

    /// Registers `fd` for **edge-triggered** readiness with `token` (the
    /// caller must drain the fd to rearm).
    pub fn add_edge(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, interest.epoll_bits(true), token)
    }

    /// Changes an existing registration's interest/token (level-triggered).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, interest.epoll_bits(false), token)
    }

    /// Removes `fd` from the poller. A closed fd is removed by the kernel
    /// automatically; calling this on one returns an error that callers may
    /// ignore.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// elapses; `None` blocks indefinitely), filling `events`. Returns the
    /// number of events delivered.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: libc::c_int = match timeout {
            // Round up so a 1 ns timeout does not spin at 0 ms.
            Some(t) => t.as_millis().min(i32::MAX as u128).max(1) as libc::c_int,
            None => -1,
        };
        const CAP: usize = 256;
        let mut raw = [libc::epoll_event { events: 0, u64: 0 }; CAP];
        // SAFETY: `raw` is a valid buffer of CAP epoll_event records.
        let n = loop {
            match cvt(unsafe {
                libc::epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as libc::c_int, timeout_ms)
            }) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for ev in &raw[..n] {
            let bits = ev.events;
            events.push(Event {
                token: { ev.u64 },
                readable: bits & (libc::EPOLLIN | libc::EPOLLRDHUP | libc::EPOLLHUP) != 0,
                writable: bits & libc::EPOLLOUT != 0,
                error: bits & (libc::EPOLLERR | libc::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this Poller and not used after drop.
        unsafe { libc::close(self.epfd) };
    }
}

/// A cross-thread wakeup for a [`Poller`] loop, backed by an `eventfd`.
///
/// Register [`Waker::fd`] with the poller (level-triggered, readable) under
/// a reserved token; any thread may then [`Waker::wake`] the loop, which
/// calls [`Waker::drain`] when it sees that token.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

// SAFETY: eventfd reads/writes are atomic syscalls on an fd owned for the
// waker's lifetime; no interior state.
unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Creates a new waker (unregistered; the caller adds [`Waker::fd`] to
    /// its poller).
    pub fn new() -> io::Result<Waker> {
        // SAFETY: no preconditions.
        let fd = cvt(unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The eventfd to register with the poller.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the poll loop. Cheap, async-signal-safe, callable from any
    /// thread; multiple wakes before a drain coalesce into one event.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a valid local to an owned eventfd.
        // The only failure mode is EAGAIN on counter overflow, which still
        // leaves the eventfd readable — the wake is delivered either way.
        unsafe { libc::write(self.fd, &one as *const u64 as *const libc::c_void, 8) };
    }

    /// Consumes pending wakes so the (level-triggered) eventfd stops
    /// reporting readable. Returns `true` if any wake was pending.
    pub fn drain(&self) -> bool {
        let mut val: u64 = 0;
        // SAFETY: reading 8 bytes into a valid local from an owned eventfd.
        let n = unsafe { libc::read(self.fd, &mut val as *mut u64 as *mut libc::c_void, 8) };
        n == 8 && val > 0
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: the fd is owned by this Waker and not used after drop.
        unsafe { libc::close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn level_triggered_readable_until_drained() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = pair();
        poller.add(a.as_raw_fd(), 7, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        // Nothing ready.
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());
        b.write_all(b"hi").unwrap();
        // Level-triggered: reported again and again until the data is read.
        for _ in 0..2 {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);
        }
        let mut buf = [0u8; 8];
        let mut a_read = &a;
        assert_eq!(a_read.read(&mut buf).unwrap(), 2);
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn edge_triggered_fires_once_per_arrival() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = pair();
        poller
            .add_edge(a.as_raw_fd(), 9, Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        b.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(events.len(), 1);
        // Without reading, the edge does not re-fire...
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        // ...until more bytes arrive.
        b.write_all(b"y").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn modify_switches_interest_to_writable() {
        let poller = Poller::new().unwrap();
        let (a, _b) = pair();
        poller.add(a.as_raw_fd(), 3, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());
        // A socket with buffer space is immediately writable.
        poller.modify(a.as_raw_fd(), 4, Interest::WRITABLE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 4);
        assert!(events[0].writable);
        poller.delete(a.as_raw_fd()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn half_close_is_not_reported_while_reads_are_masked() {
        // A write-only registration (read interest dropped for
        // backpressure) must not be woken by the peer's half-close: RDHUP
        // is subscribed only together with read interest, otherwise a
        // level-triggered RDHUP the handler cannot act on would spin the
        // loop.
        let poller = Poller::new().unwrap();
        let (a, b) = pair();
        poller.add(a.as_raw_fd(), 6, Interest::WRITABLE).unwrap();
        b.shutdown(std::net::Shutdown::Write).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        // The socket is writable (buffer space), but the half-close alone
        // must not surface as readable.
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);
        assert!(!events[0].readable);
        // Re-enabling read interest surfaces the pending EOF.
        poller.modify(a.as_raw_fd(), 6, Interest::READABLE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable);
        drop(b);
    }

    #[test]
    fn hangup_reports_readable_for_eof_detection() {
        let poller = Poller::new().unwrap();
        let (a, b) = pair();
        poller.add(a.as_raw_fd(), 5, Interest::READABLE).unwrap();
        drop(b);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(100)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(
            events[0].readable,
            "hangup must surface as readable so the loop reads the EOF"
        );
    }

    #[test]
    fn waker_wakes_from_another_thread_and_coalesces() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.add(waker.fd(), 1, Interest::READABLE).unwrap();
        let mut events = Vec::new();
        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            // Two wakes before the drain coalesce into one event.
            w.wake();
            w.wake();
        });
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 1);
        assert!(waker.drain());
        assert!(!waker.drain(), "drained waker has no pending wakes");
        poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert!(events.is_empty());
    }
}
