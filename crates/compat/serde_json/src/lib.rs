//! In-workspace stand-in for `serde_json`: renders and parses the
//! [`serde::Value`] tree as RFC 8259 JSON text.
//!
//! Supports the functions the workspace uses (`to_string`,
//! `to_string_pretty`, `to_vec`, `to_vec_pretty`, `from_str`, `from_slice`).
//! Integers round-trip exactly up to 128 bits; maps preserve insertion
//! order.

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};
use std::fmt;

/// JSON encoding/decoding failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    emit(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serializes `value` to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes `value` to indented JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Parses a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::deserialize(&value)?)
}

/// Parses a value from JSON bytes (must be UTF-8).
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn emit(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep a decimal point so the value re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => emit_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                emit(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                emit_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                emit(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn emit_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected byte `{}` at offset {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: a low surrogate escape must
                                // follow, or the input is malformed.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::new(
                                        "high surrogate not followed by a low surrogate",
                                    ));
                                }
                                let combined = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(Error::new("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new("control character in string"));
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            // Parse the signed text directly: i128::from_str accepts
            // i128::MIN and rejects anything below it, where a
            // parse-unsigned-then-negate would overflow.
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i32>("-17").unwrap(), -17);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1f980}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\ud83e\\udd80\"").unwrap(),
            "\u{1f980}"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_output_reparses() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("x".to_string(), vec![1u64, 2]);
        m.insert("y".to_string(), vec![]);
        let pretty = to_string_pretty(&m).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<u64>>>(&pretty).unwrap(),
            m
        );
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"abc").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }

    #[test]
    fn extreme_negative_integers_parse_or_error_without_panicking() {
        // i128::MIN is a legal JSON integer and must round-trip.
        let min = i128::MIN.to_string();
        assert_eq!(from_str::<i128>(&min).unwrap(), i128::MIN);
        // One below i128::MIN must be a parse error, not an overflow panic.
        assert!(from_str::<i128>("-170141183460469231731687303715884105729").is_err());
        assert!(from_str::<i128>("-999999999999999999999999999999999999999999").is_err());
    }

    #[test]
    fn malformed_surrogates_are_errors_not_panics() {
        // High surrogate followed by a non-low-surrogate escape used to
        // overflow in the pair arithmetic; it must be a parse error.
        assert!(from_str::<String>("\"\\ud800\\u0041\"").is_err());
        // Unpaired high and low surrogates.
        assert!(from_str::<String>("\"\\ud800\"").is_err());
        assert!(from_str::<String>("\"\\ud800x\"").is_err());
        assert!(from_str::<String>("\"\\udc00\"").is_err());
        // A valid pair still decodes.
        assert_eq!(
            from_str::<String>("\"\\ud83e\\udd80\"").unwrap(),
            "\u{1f980}"
        );
    }
}
