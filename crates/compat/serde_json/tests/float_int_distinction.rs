//! Regression tests for the float/integer distinction (ROADMAP PR 1
//! caveat): a whole-valued float must serialize *as a float* (`1.0`, never
//! `1`), re-parse as `Value::Float`, and round-trip bit-exactly — while
//! genuine integers keep serializing without a decimal point.

use serde::{Deserialize, Serialize, Value};
use serde_json::{from_str, to_string};

#[test]
fn whole_floats_keep_their_decimal_point() {
    assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    assert_eq!(to_string(&-0.0f64).unwrap(), "-0.0");
    assert_eq!(to_string(&2.0f32).unwrap(), "2.0");
    assert_eq!(to_string(&1e3f64).unwrap(), "1000.0");
    // And integers stay integers: no decimal point creeps in.
    assert_eq!(to_string(&1u64).unwrap(), "1");
    assert_eq!(to_string(&-7i32).unwrap(), "-7");
}

#[test]
fn serialized_whole_floats_reparse_as_floats() {
    // The distinction must survive a trip through the dynamic Value
    // representation, which is what typed deserialization reads.
    let v: Value = from_str(&to_string(&1.0f64).unwrap()).unwrap();
    assert!(matches!(v, Value::Float(f) if f == 1.0), "got {v:?}");
    let v: Value = from_str("1").unwrap();
    assert!(matches!(v, Value::UInt(1)), "got {v:?}");
    let v: Value = from_str("-1").unwrap();
    assert!(matches!(v, Value::Int(-1)), "got {v:?}");
}

#[test]
fn floats_round_trip_bit_exactly() {
    for &f in &[
        0.0f64,
        -0.0,
        1.0,
        -1.0,
        0.1,
        1.5,
        2.5e3,
        1e20,
        1e-20,
        f64::MAX,
        f64::MIN_POSITIVE,
        std::f64::consts::PI,
    ] {
        let json = to_string(&f).unwrap();
        let back: f64 = from_str(&json).unwrap();
        assert_eq!(
            back.to_bits(),
            f.to_bits(),
            "{f:?} serialized as {json} but re-parsed as {back:?}"
        );
    }
}

#[test]
fn float_fields_survive_struct_round_trips() {
    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Sample {
        ratio: f64,
        count: u64,
    }
    let s = Sample {
        ratio: 3.0,
        count: 3,
    };
    let json = to_string(&s).unwrap();
    assert!(
        json.contains("3.0") && json.contains(":3"),
        "float and int fields must stay distinguishable in {json}"
    );
    assert_eq!(from_str::<Sample>(&json).unwrap(), s);
}
