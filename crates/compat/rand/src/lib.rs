//! In-workspace stand-in for the `rand` crate (0.8-style API subset).
//!
//! The build environment has no access to crates.io, so this crate
//! implements the pieces the workspace uses: [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`seq::SliceRandom::shuffle`], and [`random`]. The
//! generator is xoshiro256++ seeded via splitmix64 — not cryptographically
//! secure, which matches how the workspace uses randomness (test workloads,
//! benchmark key sequences, and id salts).

use std::ops::Range;

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable as `gen_range` bounds.
pub trait SampleUniform: Copy {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight bias
                // is irrelevant for workload generation.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
                     i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

/// The user-facing random-number interface.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds the generator from OS-provided entropy (time + ASLR here).
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let stack_probe = 0u8;
    let mut s = nanos
        ^ (std::process::id() as u64).rotate_left(32)
        ^ (&stack_probe as *const u8 as u64).rotate_left(16)
        ^ SEQ.fetch_add(0x9e37_79b9, Ordering::Relaxed);
    splitmix64(&mut s)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len() as u64) as usize])
            }
        }
    }
}

/// Returns the thread-local generator.
pub fn thread_rng() -> rngs::StdRng {
    SeedableRng::from_entropy()
}

/// Draws one uniformly distributed value from fresh entropy.
pub fn random<T: Standard>() -> T {
    T::sample(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = rngs::StdRng::seed_from_u64(1);
        let mut b = rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = rngs::StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in sorted order");
    }

    #[test]
    fn random_values_vary() {
        let a: u64 = random();
        let b: u64 = random();
        assert_ne!(a, b);
    }
}
