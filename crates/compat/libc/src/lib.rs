//! In-workspace stand-in for the `libc` crate (Linux x86_64/aarch64).
//!
//! The build environment has no access to crates.io, so this crate declares
//! exactly the C types, constants, and functions the workspace uses:
//! memory mapping (`mmap`/`munmap`/`msync`), `SO_PEERCRED` credential
//! lookup on UNIX sockets, epoll readiness notification + `eventfd` wakeups
//! (the `compat/polling` poller), and `RLIMIT_NOFILE` adjustment (the
//! connection-scaling bench). Constant values match the Linux UAPI headers.

#![allow(non_camel_case_types)]

pub use core::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;
pub type socklen_t = u32;
pub type pid_t = i32;
pub type uid_t = u32;
pub type gid_t = u32;

// mmap protection bits (asm-generic/mman-common.h).
pub const PROT_NONE: c_int = 0x0;
pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;
pub const PROT_EXEC: c_int = 0x4;

// mmap flags (asm-generic/mman.h, identical on x86_64 and aarch64).
pub const MAP_SHARED: c_int = 0x01;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_FIXED: c_int = 0x10;
pub const MAP_ANONYMOUS: c_int = 0x20;
pub const MAP_NORESERVE: c_int = 0x4000;

/// Error return of `mmap`.
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

// msync flags.
pub const MS_ASYNC: c_int = 1;
pub const MS_INVALIDATE: c_int = 2;
pub const MS_SYNC: c_int = 4;

// Socket options (asm-generic/socket.h).
pub const SOL_SOCKET: c_int = 1;
pub const SO_PEERCRED: c_int = 17;

/// Kernel-reported peer credentials (`struct ucred`).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ucred {
    pub pid: pid_t,
    pub uid: uid_t,
    pub gid: gid_t,
}

// epoll (sys/epoll.h; eventpoll.h in the kernel UAPI).
pub const EPOLL_CLOEXEC: c_int = 0x8_0000;
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

/// One epoll readiness record. The kernel ABI packs the struct on x86_64
/// (no padding between `events` and `u64`); other architectures use natural
/// `repr(C)` layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub u64: u64,
}

// eventfd (sys/eventfd.h).
pub const EFD_CLOEXEC: c_int = 0x8_0000;
pub const EFD_NONBLOCK: c_int = 0x800;

// Resource limits (sys/resource.h).
pub const RLIMIT_NOFILE: c_int = 7;

/// Resource limit pair (`struct rlimit`, 64-bit fields on LP64 Linux).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct rlimit {
    pub rlim_cur: u64,
    pub rlim_max: u64,
}

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn msync(addr: *mut c_void, len: size_t, flags: c_int) -> c_int;
    pub fn getsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut socklen_t,
    ) -> c_int;
    pub fn getuid() -> uid_t;
    pub fn getgid() -> gid_t;
    pub fn getpid() -> pid_t;
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    pub fn close(fd: c_int) -> c_int;
    pub fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    pub fn setrlimit(resource: c_int, rlim: *const rlimit) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_mmap_roundtrip() {
        // SAFETY: anonymous private mapping with no preconditions.
        unsafe {
            let p = mmap(
                core::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 42;
            assert_eq!(*(p as *const u8), 42);
            assert_eq!(munmap(p, 4096), 0);
        }
    }

    #[test]
    fn eventfd_epoll_roundtrip() {
        // SAFETY: plain syscalls on freshly created fds, closed at the end.
        unsafe {
            let ep = epoll_create1(EPOLL_CLOEXEC);
            assert!(ep >= 0);
            let ev = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
            assert!(ev >= 0);
            let mut reg = epoll_event {
                events: EPOLLIN,
                u64: 42,
            };
            assert_eq!(epoll_ctl(ep, EPOLL_CTL_ADD, ev, &mut reg), 0);
            // Nothing ready yet.
            let mut out = [epoll_event { events: 0, u64: 0 }; 4];
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 0), 0);
            // A write makes the eventfd readable with our token.
            let one: u64 = 1;
            assert_eq!(write(ev, &one as *const u64 as *const c_void, 8), 8);
            assert_eq!(epoll_wait(ep, out.as_mut_ptr(), 4, 100), 1);
            assert_eq!({ out[0].u64 }, 42);
            let mut val: u64 = 0;
            assert_eq!(read(ev, &mut val as *mut u64 as *mut c_void, 8), 8);
            assert_eq!(val, 1);
            assert_eq!(close(ev), 0);
            assert_eq!(close(ep), 0);
        }
    }

    #[test]
    fn nofile_rlimit_is_readable() {
        let mut lim = rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: `lim` is a valid out-pointer.
        let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
        assert_eq!(rc, 0);
        assert!(lim.rlim_cur > 0 && lim.rlim_cur <= lim.rlim_max);
    }

    #[test]
    fn uid_gid_are_stable() {
        // SAFETY: getuid/getgid have no preconditions.
        unsafe {
            assert_eq!(getuid(), getuid());
            assert_eq!(getgid(), getgid());
        }
    }
}
