//! In-workspace stand-in for the `libc` crate (Linux x86_64/aarch64).
//!
//! The build environment has no access to crates.io, so this crate declares
//! exactly the C types, constants, and functions the workspace uses:
//! memory mapping (`mmap`/`munmap`/`msync`), and `SO_PEERCRED` credential
//! lookup on UNIX sockets. Constant values match the Linux UAPI headers.

#![allow(non_camel_case_types)]

pub use core::ffi::c_void;

pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;
pub type socklen_t = u32;
pub type pid_t = i32;
pub type uid_t = u32;
pub type gid_t = u32;

// mmap protection bits (asm-generic/mman-common.h).
pub const PROT_NONE: c_int = 0x0;
pub const PROT_READ: c_int = 0x1;
pub const PROT_WRITE: c_int = 0x2;
pub const PROT_EXEC: c_int = 0x4;

// mmap flags (asm-generic/mman.h, identical on x86_64 and aarch64).
pub const MAP_SHARED: c_int = 0x01;
pub const MAP_PRIVATE: c_int = 0x02;
pub const MAP_FIXED: c_int = 0x10;
pub const MAP_ANONYMOUS: c_int = 0x20;
pub const MAP_NORESERVE: c_int = 0x4000;

/// Error return of `mmap`.
pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

// msync flags.
pub const MS_ASYNC: c_int = 1;
pub const MS_INVALIDATE: c_int = 2;
pub const MS_SYNC: c_int = 4;

// Socket options (asm-generic/socket.h).
pub const SOL_SOCKET: c_int = 1;
pub const SO_PEERCRED: c_int = 17;

/// Kernel-reported peer credentials (`struct ucred`).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ucred {
    pub pid: pid_t,
    pub uid: uid_t,
    pub gid: gid_t,
}

extern "C" {
    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn msync(addr: *mut c_void, len: size_t, flags: c_int) -> c_int;
    pub fn getsockopt(
        sockfd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut socklen_t,
    ) -> c_int;
    pub fn getuid() -> uid_t;
    pub fn getgid() -> gid_t;
    pub fn getpid() -> pid_t;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anonymous_mmap_roundtrip() {
        // SAFETY: anonymous private mapping with no preconditions.
        unsafe {
            let p = mmap(
                core::ptr::null_mut(),
                4096,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            assert_ne!(p, MAP_FAILED);
            *(p as *mut u8) = 42;
            assert_eq!(*(p as *const u8), 42);
            assert_eq!(munmap(p, 4096), 0);
        }
    }

    #[test]
    fn uid_gid_are_stable() {
        // SAFETY: getuid/getgid have no preconditions.
        unsafe {
            assert_eq!(getuid(), getuid());
            assert_eq!(getgid(), getgid());
        }
    }
}
