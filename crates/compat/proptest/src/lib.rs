//! In-workspace stand-in for the `proptest` crate.
//!
//! Supports the API subset the workspace uses: the [`proptest!`] macro over
//! functions with a single `ident in strategy` binding, range and tuple
//! strategies, [`collection::vec`], [`ProptestConfig::with_cases`], and the
//! `prop_assert*` macros. Each case runs with a seeded, per-case-index RNG,
//! so failures are reproducible; there is no shrinking.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one input.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing vectors with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` inputs with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[doc(hidden)]
pub fn __run_property<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    body: impl Fn(S::Value),
) {
    for case in 0..config.cases {
        // Deterministic per-case seed so a failing case is reproducible.
        let mut rng = StdRng::seed_from_u64(0x70726f70 ^ (case as u64) << 16 ^ name.len() as u64);
        let input = strategy.sample(&mut rng);
        body(input);
    }
}

/// Declares property tests (`proptest!` macro subset).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($arg:ident in $strategy:expr) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_property(&$config, stringify!($name), &$strategy, |$arg| $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($arg:ident in $strategy:expr) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($arg in $strategy) $body
            )*
        }
    };
}

/// Asserts inside a property (panics, aborting the run).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 5usize..50) {
            prop_assert!((5..50).contains(&v));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec((1usize..10, 0u8..3), 2..7) ) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for (a, b) in v {
                prop_assert!((1..10).contains(&a));
                prop_assert!(b < 3);
            }
        }
    }
}
