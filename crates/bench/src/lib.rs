//! Shared helpers for the benchmark harness.
//!
//! Every table and figure in the paper's evaluation has a corresponding
//! binary in `src/bin/` (see DESIGN.md's experiment index); this module
//! holds the scaling / timing / output plumbing they share.
//!
//! All binaries run **scaled-down sizes by default** so the whole harness
//! completes in minutes on a laptop; pass `--full` for paper-scale runs.

use std::time::{Duration, Instant};

/// Benchmark scale selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes (default).
    Quick,
    /// Paper-scale sizes (`--full`).
    Full,
}

impl Scale {
    /// Parses the scale from the process arguments.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Chooses between the quick and full variant of a parameter.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Times a closure.
pub fn time_it<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let start = Instant::now();
    let result = f();
    (start.elapsed(), result)
}

/// Times a closure and returns seconds.
pub fn secs(f: impl FnOnce()) -> f64 {
    let (d, ()) = time_it(f);
    d.as_secs_f64()
}

/// Prints a result row in the harness's uniform format
/// (`experiment,system,operation,parameter,value`).
pub fn emit_row(experiment: &str, system: &str, operation: &str, parameter: &str, value: f64) {
    println!("{experiment},{system},{operation},{parameter},{value:.6}");
}

/// Prints the header for the uniform row format.
pub fn emit_header() {
    println!("experiment,system,operation,parameter,value");
}

/// Creates a throwaway daemon + client pair backed by a temp directory.
pub fn test_env() -> (tempfile::TempDir, puddled::Daemon, puddles::PuddleClient) {
    let tmp = tempfile::tempdir().expect("tempdir");
    let daemon =
        puddled::Daemon::start(puddled::DaemonConfig::for_testing(tmp.path())).expect("daemon");
    let client = puddles::PuddleClient::connect_local(&daemon).expect("client");
    (tmp, daemon, client)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick_selects_the_right_value() {
        assert_eq!(Scale::Quick.pick(1, 100), 1);
        assert_eq!(Scale::Full.pick(1, 100), 100);
    }

    #[test]
    fn time_it_reports_elapsed_time() {
        let (d, x) = time_it(|| 41 + 1);
        assert_eq!(x, 42);
        assert!(d.as_secs() < 5);
    }
}
