//! Fig. 11: `simplekv` KV store under YCSB workloads A–G for Puddles,
//! PMDK-sim and Romulus-sim (1 M-key load + 1 M-operation run in the paper).
//!
//! Atlas and go-pmem are not reimplemented (see DESIGN.md substitutions);
//! the paper's headline comparisons are against PMDK and Romulus.

use pm_datastructures::kv::{value_for, PmdkKv, PuddlesKv, RomulusKv};
use puddles_bench::{emit_header, emit_row, secs, test_env, Scale};
use ycsb::Workload;

fn main() {
    let scale = Scale::from_args();
    let records = scale.pick(20_000u64, 1_000_000u64);
    let operations = scale.pick(20_000usize, 1_000_000usize);
    emit_header();

    for wl in Workload::ALL {
        let requests = wl.generate(records, operations, 42);

        // Puddles.
        {
            let (_tmp, _daemon, client) = test_env();
            let kv = PuddlesKv::new(&client, "fig11").unwrap();
            for k in 0..records {
                kv.put(k, &value_for(k, 0)).unwrap();
            }
            let run = secs(|| {
                for req in &requests {
                    kv.execute(req).unwrap();
                }
            });
            emit_row("fig11", "puddles", "run_s", wl.name(), run);
        }

        // PMDK-sim.
        {
            let tmp = tempfile::tempdir().unwrap();
            let pool_size = (records as usize * 256).max(128 << 20);
            let kv = PmdkKv::create(tmp.path().join("fig11.pmdk"), pool_size).unwrap();
            for k in 0..records {
                kv.put(k, &value_for(k, 0)).unwrap();
            }
            let run = secs(|| {
                for req in &requests {
                    kv.execute(req).unwrap();
                }
            });
            emit_row("fig11", "pmdk", "run_s", wl.name(), run);
        }

        // Romulus-sim.
        {
            let tmp = tempfile::tempdir().unwrap();
            let region = (records as usize * 192).max(128 << 20);
            let kv = RomulusKv::create(tmp.path().join("fig11.rom"), region).unwrap();
            for k in 0..records {
                kv.put(k, &value_for(k, 0)).unwrap();
            }
            let run = secs(|| {
                for req in &requests {
                    kv.execute(req).unwrap();
                }
            });
            emit_row("fig11", "romulus", "run_s", wl.name(), run);
        }
    }
}
