//! Fig. 9: singly linked list — insert / delete / traverse(sum) for Puddles,
//! PMDK-sim and Romulus-sim (the paper performs 10 M operations each).

use pm_datastructures::list::{PmdkList, PuddlesList, RomulusList};
use puddles_bench::{emit_header, emit_row, secs, test_env, Scale};

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(20_000u64, 10_000_000u64);
    emit_header();

    // Puddles.
    {
        let (_tmp, _daemon, client) = test_env();
        let list = PuddlesList::new(&client, "fig9").unwrap();
        let insert = secs(|| {
            for i in 0..n {
                list.insert_tail(i).unwrap();
            }
        });
        let traverse = secs(|| {
            std::hint::black_box(list.sum());
        });
        let delete = secs(|| {
            for _ in 0..n {
                list.delete_head().unwrap();
            }
        });
        emit_row("fig9", "puddles", "insert_s", &n.to_string(), insert);
        emit_row("fig9", "puddles", "delete_s", &n.to_string(), delete);
        emit_row("fig9", "puddles", "traverse_s", &n.to_string(), traverse);
    }

    // PMDK-sim.
    {
        let tmp = tempfile::tempdir().unwrap();
        let pool_size = (n as usize * 96).max(64 << 20);
        let list = PmdkList::create(tmp.path().join("fig9.pmdk"), pool_size).unwrap();
        let insert = secs(|| {
            for i in 0..n {
                list.insert_tail(i).unwrap();
            }
        });
        let traverse = secs(|| {
            std::hint::black_box(list.sum());
        });
        let delete = secs(|| {
            for _ in 0..n {
                list.delete_head().unwrap();
            }
        });
        emit_row("fig9", "pmdk", "insert_s", &n.to_string(), insert);
        emit_row("fig9", "pmdk", "delete_s", &n.to_string(), delete);
        emit_row("fig9", "pmdk", "traverse_s", &n.to_string(), traverse);
    }

    // Romulus-sim.
    {
        let tmp = tempfile::tempdir().unwrap();
        let region = (n as usize * 80).max(64 << 20);
        let list = RomulusList::create(tmp.path().join("fig9.rom"), region).unwrap();
        let insert = secs(|| {
            for i in 0..n {
                list.insert_tail(i).unwrap();
            }
        });
        let traverse = secs(|| {
            std::hint::black_box(list.sum());
        });
        let delete = secs(|| {
            for _ in 0..n {
                list.delete_head().unwrap();
            }
        });
        emit_row("fig9", "romulus", "insert_s", &n.to_string(), insert);
        emit_row("fig9", "romulus", "delete_s", &n.to_string(), delete);
        emit_row("fig9", "romulus", "traverse_s", &n.to_string(), traverse);
    }
}
