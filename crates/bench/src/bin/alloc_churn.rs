//! Space-allocator churn: create/drop storms against live populations of
//! 1k / 10k / 100k extents, under three size mixes, plus a thread-scaling
//! matrix over the sharded front-end.
//!
//! The seed allocator was first-fit over a flat `Vec` with a full
//! sort-and-coalesce on every free — O(live extents) per operation — so a
//! create/drop pair at 100k live puddles cost ~100x the 1k cell. The
//! segregated-fit allocator with lazy coalescing is O(1) amortized, so
//! per-op cost must stay **flat** as the population grows; that is this
//! harness's headline check, enforced in CI with `--assert-flat` (the 100k
//! cell must stay within 1.5x of the 1k cell per mix).
//!
//! One op is a full create/drop pair through the registry (`free_space` +
//! `alloc_space`, both emitting WAL records); checkpointing is parked at
//! `u64::MAX` so the rows isolate allocator cost, with a periodic group
//! commit bounding the WAL buffer. The lazy-coalesce passes the churn
//! triggers run inline (bare registry) and are *included* in the measured
//! time — the claim is amortized O(1), not O(1)-when-nobody-merges.
//!
//! Size mixes:
//!
//! * `uniform` — every extent one page (pure bucket churn);
//! * `mixed_pow2` — 1..64 pages, power-of-two (every shard bucket in play);
//! * `adversarial` — rotating odd sizes (1/7/3/5 pages) so frees rarely
//!   exactly fit a later alloc: maximal splitting, remainder re-binning,
//!   and fragmentation pressure on the coalescer.
//!
//! Output rows: `alloc_churn,puddles,<mix>_pairs_per_s,<live>,<value>` plus
//! a `<mix>_frag_bp` row (post-churn fragmentation, basis points), and
//! `threads_pairs_per_s` rows for the 1/4/8-thread cells. `--json <path>`
//! writes `BENCH_alloc_churn.json` for CI artifact upload.

use puddled::registry::Registry;
use puddles_bench::{emit_header, emit_row, secs, Scale};
use puddles_pmem::pmdir::PmDir;
use puddles_pmem::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Barrier};

const PAGE: u64 = PAGE_SIZE as u64;

/// Group-commit cadence: bounds the buffered WAL tail without putting an
/// fsync in every measured op.
const COMMIT_EVERY: usize = 10_000;

fn fresh_registry(dir: &std::path::Path) -> Registry {
    let pm = PmDir::open(dir).expect("pmdir");
    let reg = Registry::load_or_create(&pm, 0x5000_0000_0000, 64 << 30).expect("registry");
    reg.wal().set_checkpoint_threshold(u64::MAX);
    reg
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    Uniform,
    MixedPow2,
    Adversarial,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::Uniform => "uniform",
            Mix::MixedPow2 => "mixed_pow2",
            Mix::Adversarial => "adversarial",
        }
    }

    fn size_pages(self, rng: &mut StdRng, i: usize) -> u64 {
        match self {
            Mix::Uniform => 1,
            Mix::MixedPow2 => 1 << rng.gen_range(0..7u32),
            Mix::Adversarial => [1, 7, 3, 5][i % 4],
        }
    }
}

/// Allocates `count` live extents of the mix's sizes.
fn populate(reg: &Registry, mix: Mix, count: usize, rng: &mut StdRng) -> Vec<(u64, u64)> {
    let mut live = Vec::with_capacity(count);
    for i in 0..count {
        let size = mix.size_pages(rng, i) * PAGE;
        let off = reg.alloc_space(size).expect("populate alloc");
        live.push((off, size));
        if i % COMMIT_EVERY == COMMIT_EVERY - 1 {
            reg.commit().expect("commit");
        }
    }
    reg.commit().expect("commit");
    live
}

/// Runs `ops` create/drop pairs over `live`, returning pairs/sec.
fn churn(reg: &Registry, mix: Mix, live: &mut [(u64, u64)], ops: usize, rng: &mut StdRng) -> f64 {
    let elapsed = secs(|| {
        for i in 0..ops {
            // Victims are taken in rotation, not at a random index: a random
            // probe into the 100k-cell's multi-MB `live` vec is a cache miss
            // the 1k cell never pays, which would tax the big cells with
            // *harness* overhead and muddy the allocator-flatness signal.
            // The slots still hold arbitrary addresses after the first lap,
            // so the allocator sees scattered frees either way.
            let idx = i % live.len();
            let (off, len) = live[idx];
            reg.free_space(off, len);
            let size = mix.size_pages(rng, i) * PAGE;
            let off = reg.alloc_space(size).expect("churn alloc");
            live[idx] = (off, size);
            if i % COMMIT_EVERY == COMMIT_EVERY - 1 {
                reg.commit().expect("commit");
            }
        }
    });
    ops as f64 / elapsed
}

/// One live population cell of a mix, kept open so windows over different
/// populations can be interleaved.
struct Cell {
    _tmp: tempfile::TempDir,
    reg: Registry,
    live: Vec<(u64, u64)>,
    rng: StdRng,
    /// Pairs/s per timed window, one entry per rep.
    rates: Vec<f64>,
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    let assert_flat = args.iter().any(|a| a == "--assert-flat");
    emit_header();

    let mut json = String::from("{\n  \"experiment\": \"alloc_churn\",\n  \"rows\": [\n");
    let mut first = true;
    let mut push_row = |json: &mut String, row: String| {
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&row);
    };

    // ---- Population scaling: per-op cost must be flat in live extents ----
    // The populations are the experiment variable, so quick scale shortens
    // the churn window, not the 1k/10k/100k ladder.
    let populations: &[usize] = &[1_000, 10_000, 100_000];
    // Many short windows rather than a few long ones: host throughput moves
    // in phases, and fine interleaving gives every population a window in
    // the same phase, which is what the cross-cell ratio needs.
    let ops = scale.pick(50_000, 200_000);
    let reps = 8;
    let mixes = [Mix::Uniform, Mix::MixedPow2, Mix::Adversarial];
    // (mix, live) -> per-rep pairs/s, for the flatness check.
    let mut cells: Vec<(&'static str, usize, Vec<f64>)> = Vec::new();
    for &mix in &mixes {
        // The flatness check compares populations against each other, so
        // their timed windows are *interleaved* (rep 1 over every cell,
        // then rep 2, ...) and each cell keeps its best window: machine-
        // wide noise lands on all populations instead of deciding the
        // ratio, and an unmeasured warm-up gets every cell to allocator
        // steady state (first-touch splits done, coalesce re-armed) first.
        let mut open: Vec<Cell> = populations
            .iter()
            .map(|&live_count| {
                let tmp = tempfile::tempdir().expect("tempdir");
                let reg = fresh_registry(tmp.path());
                let mut rng = StdRng::seed_from_u64(0xa110c ^ live_count as u64);
                let live = populate(&reg, mix, live_count, &mut rng);
                let mut cell = Cell {
                    _tmp: tmp,
                    reg,
                    live,
                    rng,
                    rates: Vec::new(),
                };
                churn(&cell.reg, mix, &mut cell.live, ops / 4, &mut cell.rng);
                cell
            })
            .collect();
        for _rep in 0..reps {
            for cell in &mut open {
                let rate = churn(&cell.reg, mix, &mut cell.live, ops, &mut cell.rng);
                cell.rates.push(rate);
            }
        }
        for (cell, &live_count) in open.iter().zip(populations) {
            let pairs_per_s = cell.rates.iter().fold(0.0, |a: f64, &b| a.max(b));
            let frag_bp = cell.reg.alloc_stats().fragmentation_bp;
            emit_row(
                "alloc_churn",
                "puddles",
                &format!("{}_pairs_per_s", mix.name()),
                &live_count.to_string(),
                pairs_per_s,
            );
            emit_row(
                "alloc_churn",
                "puddles",
                &format!("{}_frag_bp", mix.name()),
                &live_count.to_string(),
                frag_bp as f64,
            );
            push_row(
                &mut json,
                format!(
                    "    {{\"mix\": \"{}\", \"live\": {live_count}, \
                     \"pairs_per_s\": {pairs_per_s:.1}, \"frag_bp\": {frag_bp}}}",
                    mix.name()
                ),
            );
            cells.push((mix.name(), live_count, cell.rates.clone()));
        }
    }

    // ---- Thread scaling over the sharded front-end ----------------------
    // Each thread churns a private slice of a shared registry's extents;
    // with one global allocator mutex this serializes, with per-shard
    // arenas it scales.
    let thread_counts: &[usize] = &[1, 4, 8];
    let per_thread_live = 2_000;
    let thread_ops = scale.pick(20_000, 200_000);
    for &threads in thread_counts {
        let tmp = tempfile::tempdir().expect("tempdir");
        let reg = Arc::new(fresh_registry(tmp.path()));
        let barrier = Arc::new(Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let reg = Arc::clone(&reg);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0x5ca1e ^ t as u64);
                    let mut live = populate(&reg, Mix::Uniform, per_thread_live, &mut rng);
                    barrier.wait();
                    churn(
                        &reg,
                        Mix::Uniform,
                        &mut live,
                        thread_ops / threads,
                        &mut rng,
                    );
                    thread_ops / threads
                })
            })
            .collect();
        let start = std::time::Instant::now();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let pairs_per_s = total as f64 / start.elapsed().as_secs_f64();
        emit_row(
            "alloc_churn",
            "puddles",
            "threads_pairs_per_s",
            &threads.to_string(),
            pairs_per_s,
        );
        push_row(
            &mut json,
            format!(
                "    {{\"mix\": \"threads\", \"threads\": {threads}, \
                 \"live\": {}, \"pairs_per_s\": {pairs_per_s:.1}}}",
                threads * per_thread_live
            ),
        );
    }

    json.push_str("\n  ]\n}\n");
    if let Some(path) = json_path {
        std::fs::write(&path, json).expect("write bench json");
    }

    // Headline flatness check: the 100k-live cell must stay within 1.5x of
    // the 1k cell per mix. The ratio is taken *per paired rep* — the two
    // windows of one rep ran back to back, so host throughput phases cancel
    // — and the best (lowest) pair decides: one rep in a clean phase is
    // enough to show the allocator itself is flat. Reported always;
    // enforced under `--assert-flat`.
    for &mix in &mixes {
        let cell = |live: usize| {
            cells
                .iter()
                .find(|(m, l, _)| *m == mix.name() && *l == live)
                .map(|(_, _, v)| v.clone())
                .expect("cell")
        };
        let (small, big) = (cell(1_000), cell(100_000));
        let ratio = small
            .iter()
            .zip(&big)
            .map(|(s, b)| s / b)
            .fold(f64::INFINITY, f64::min);
        println!(
            "# alloc_churn {}: 1k={:.0} pairs/s, 100k={:.0} pairs/s, paired ratio={ratio:.2}x",
            mix.name(),
            small.iter().fold(0.0, |a: f64, &b| a.max(b)),
            big.iter().fold(0.0, |a: f64, &b| a.max(b)),
        );
        if assert_flat {
            assert!(
                ratio <= 1.5,
                "{} per-op cost degrades with population: best paired 1k/100k \
                 ratio {ratio:.2}x > 1.5x",
                mix.name()
            );
        }
    }
}
