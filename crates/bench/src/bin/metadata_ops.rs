//! Registry metadata mutation throughput: WAL group commit vs the old
//! snapshot-per-write persistence.
//!
//! The registry used to rewrite (and fsync) the entire JSON document on
//! every mutation, so persistence cost grew with the number of registered
//! puddles. With the metadata WAL a mutation appends one O(record) entry
//! and batches its fsync with concurrent mutators. This harness measures
//! both disciplines on the same `Registry` so the before/after is apples
//! to apples:
//!
//! * `wal` — mutate + `commit()` (one group-committed WAL record per op,
//!   the daemon's steady-state path);
//! * `snapshot` — mutate + `checkpoint()` (full-document rewrite per op,
//!   exactly what every mutation used to cost);
//! * `wal-mt` — T threads mutating concurrently through `commit()`,
//!   demonstrating that group commit batches their fsyncs.
//!
//! Output rows: `metadata_ops,puddles,<operation>,<parameter>,<ops_per_sec>`.

use puddled::registry::{PuddleRecord, Registry};
use puddles_bench::{emit_header, emit_row, secs, Scale};
use puddles_pmem::pmdir::PmDir;
use puddles_pmem::PAGE_SIZE;
use puddles_proto::PuddlePurpose;
use std::sync::Arc;

fn fresh_registry(dir: &std::path::Path) -> Registry {
    let pm = PmDir::open(dir).expect("pmdir");
    Registry::load_or_create(&pm, 0x5000_0000_0000, 64 << 30).expect("registry")
}

fn record(reg: &Registry) -> PuddleRecord {
    let id = reg.fresh_id();
    let offset = reg.alloc_space(PAGE_SIZE as u64).expect("alloc");
    PuddleRecord {
        id,
        size: PAGE_SIZE as u64,
        offset,
        file: id.to_hex(),
        purpose: PuddlePurpose::Data,
        owner_uid: 1,
        owner_gid: 1,
        mode: 0o600,
        pool: None,
        needs_rewrite: false,
        translations: vec![],
    }
}

/// One registered-puddle mutation persisted with the WAL (`commit`) or a
/// full snapshot (`checkpoint`).
fn run_single(ops: usize, snapshot_per_write: bool) -> f64 {
    let tmp = tempfile::tempdir().expect("tempdir");
    let reg = fresh_registry(tmp.path());
    if !snapshot_per_write {
        // Keep the threshold out of the way so the measurement isolates the
        // per-op append + fsync (the daemon's steady-state cost).
        reg.wal().set_checkpoint_threshold(u64::MAX);
    }
    let elapsed = secs(|| {
        for _ in 0..ops {
            let rec = record(&reg);
            reg.register_puddle(rec).expect("register");
            if snapshot_per_write {
                reg.checkpoint().expect("checkpoint");
            } else {
                reg.commit().expect("commit");
            }
        }
    });
    ops as f64 / elapsed
}

/// `threads` threads each performing `ops` WAL-committed mutations.
fn run_threaded(threads: usize, ops: usize) -> f64 {
    let tmp = tempfile::tempdir().expect("tempdir");
    let reg = Arc::new(fresh_registry(tmp.path()));
    reg.wal().set_checkpoint_threshold(u64::MAX);
    let elapsed = secs(|| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..ops {
                        let rec = record(&reg);
                        reg.register_puddle(rec).expect("register");
                        reg.commit().expect("commit");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("join");
        }
    });
    (threads * ops) as f64 / elapsed
}

fn main() {
    let scale = Scale::from_args();
    emit_header();

    // The snapshot discipline's cost grows with registry size, so even the
    // quick run makes the O(registry) vs O(record) gap visible.
    let snapshot_ops = scale.pick(300, 2000);
    let wal_ops = scale.pick(3000, 20000);

    let snap = run_single(snapshot_ops, true);
    emit_row(
        "metadata_ops",
        "puddles",
        "register_puddle",
        "snapshot",
        snap,
    );

    let wal = run_single(wal_ops, false);
    emit_row("metadata_ops", "puddles", "register_puddle", "wal", wal);

    for threads in [2usize, 4, 8] {
        let per_thread = scale.pick(1000, 5000);
        let tput = run_threaded(threads, per_thread);
        emit_row(
            "metadata_ops",
            "puddles",
            "register_puddle",
            &format!("wal-mt{threads}"),
            tput,
        );
    }

    eprintln!(
        "# wal/snapshot speedup: {:.1}x (snapshot={snap:.0} ops/s, wal={wal:.0} ops/s)",
        wal / snap
    );
}
