//! Fig. 12: multithreaded scaling of the Euler-identity array workload —
//! total throughput normalized to one thread, for 1..N threads.

use pm_datastructures::euler::EulerArray;
use puddles_bench::{emit_header, emit_row, test_env, Scale};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_args();
    let elements = scale.pick(64 * 1024usize, 1_000_000usize);
    let max_threads = scale.pick(8usize, 40usize);
    emit_header();

    let mut baseline = None;
    let mut threads = 1usize;
    while threads <= max_threads {
        let (_tmp, _daemon, client) = test_env();
        let array = Arc::new(EulerArray::create(&client, "fig12", elements).unwrap());
        let elapsed = array.run_parallel(threads).as_secs_f64();
        let throughput = elements as f64 / elapsed;
        let base = *baseline.get_or_insert(throughput);
        emit_row(
            "fig12",
            "puddles",
            "throughput_norm",
            &threads.to_string(),
            throughput / base,
        );
        emit_row(
            "fig12",
            "puddles",
            "elapsed_s",
            &threads.to_string(),
            elapsed,
        );
        threads *= 2;
    }
}
