//! Fig. 10: order-8 B-tree — insert / delete / search for Puddles and
//! PMDK-sim (8-byte keys and values).

use pm_datastructures::btree::{PmdkBTree, PuddlesBTree};
use puddles_bench::{emit_header, emit_row, secs, test_env, Scale};
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let n = scale.pick(20_000u64, 1_000_000u64);
    let mut keys: Vec<u64> = (0..n).collect();
    keys.shuffle(&mut rand::rngs::StdRng::seed_from_u64(1));
    emit_header();

    // Puddles.
    {
        let (_tmp, _daemon, client) = test_env();
        let tree = PuddlesBTree::new(&client, "fig10").unwrap();
        let insert = secs(|| {
            for &k in &keys {
                tree.insert(k, k).unwrap();
            }
        });
        let search = secs(|| {
            for &k in &keys {
                std::hint::black_box(tree.search(k));
            }
        });
        let delete = secs(|| {
            for &k in keys.iter().take((n / 2) as usize) {
                tree.delete(k).unwrap();
            }
        });
        emit_row("fig10", "puddles", "insert_s", &n.to_string(), insert);
        emit_row("fig10", "puddles", "delete_s", &(n / 2).to_string(), delete);
        emit_row("fig10", "puddles", "search_s", &n.to_string(), search);
    }

    // PMDK-sim.
    {
        let tmp = tempfile::tempdir().unwrap();
        let pool_size = (n as usize * 300).max(64 << 20);
        let tree = PmdkBTree::create(tmp.path().join("fig10.pmdk"), pool_size).unwrap();
        let insert = secs(|| {
            for &k in &keys {
                tree.insert(k, k).unwrap();
            }
        });
        let search = secs(|| {
            for &k in &keys {
                std::hint::black_box(tree.search(k));
            }
        });
        let delete = secs(|| {
            for &k in keys.iter().take((n / 2) as usize) {
                tree.delete(k).unwrap();
            }
        });
        emit_row("fig10", "pmdk", "insert_s", &n.to_string(), insert);
        emit_row("fig10", "pmdk", "delete_s", &(n / 2).to_string(), delete);
        emit_row("fig10", "pmdk", "search_s", &n.to_string(), search);
    }
}
