//! Table 3: mean latency of API primitives (TX NOP, TX_ADD 8 B / 4 KiB,
//! malloc 8 B / 4 KiB, malloc+free 8 B / 4 KiB) for Puddles vs PMDK-sim,
//! plus the log-append microbenchmark behind the fence-minimized commit
//! path (fenced baseline vs volatile-cursor `LogWriter`, single- and
//! 8-threaded).
//!
//! Pass `--json <path>` to also write the commit-path numbers as
//! `BENCH_tx_commit.json` for CI perf tracking.

use puddles_bench::{emit_header, emit_row, test_env, time_it, Scale};
use puddles_logfmt::{EntryKind, LogRef, LogWriter, ReplayOrder, SEQ_UNDO};

/// Appends 8-byte undo entries into a DRAM-backed log until `iters` appends
/// are done, resetting the log whenever it fills; returns appends/s.
///
/// `fenced` selects the durable-header baseline path (`LogRef::append`, two
/// flush+fence rounds per append — the pre-optimization commit path) vs the
/// volatile-cursor fast path (`LogWriter::append`, one unfenced flush).
fn append_throughput(iters: u64, fenced: bool) -> f64 {
    let mut buf = vec![0u8; 4 << 20];
    // SAFETY: `buf` outlives the LogRef and is only accessed through it.
    let log = unsafe { LogRef::from_raw(buf.as_mut_ptr(), buf.len()) };
    log.init();
    let payload = [0xABu8; 8];
    let (d, _) = time_it(|| {
        if fenced {
            let mut done = 0u64;
            while done < iters {
                log.reset();
                while done < iters
                    && log
                        .append(
                            0x1000,
                            SEQ_UNDO,
                            ReplayOrder::Reverse,
                            EntryKind::Undo,
                            &payload,
                        )
                        .is_ok()
                {
                    done += 1;
                }
            }
        } else {
            let mut done = 0u64;
            while done < iters {
                let mut w = LogWriter::begin(log).expect("begin");
                while done < iters
                    && w.append(
                        0x1000,
                        SEQ_UNDO,
                        ReplayOrder::Reverse,
                        EntryKind::Undo,
                        &payload,
                    )
                    .is_ok()
                {
                    done += 1;
                }
                w.reset();
            }
        }
    });
    iters as f64 / d.as_secs_f64()
}

/// Unfenced append throughput summed over `threads` concurrent writers,
/// each owning a private DRAM-backed log (the per-thread-log design).
///
/// Sums the rates each thread measures over its own append loop, so thread
/// spawn, buffer allocation, and log init stay outside the measurement and
/// the number is comparable with the single-thread one.
fn append_throughput_mt(iters_per_thread: u64, threads: usize) -> f64 {
    let handles: Vec<_> = (0..threads)
        .map(|_| std::thread::spawn(move || append_throughput(iters_per_thread, false)))
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn main() {
    let scale = Scale::from_args();
    let iters = scale.pick(2_000u64, 50_000u64);
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };

    emit_header();

    // ----- Log-append microbenchmark (the tentpole metric) -----
    let append_iters = scale.pick(200_000u64, 2_000_000u64);
    let fenced = append_throughput(append_iters, true);
    let unfenced = append_throughput(append_iters, false);
    let unfenced_8t = append_throughput_mt(append_iters, 8);
    emit_row("table3", "puddles", "log_append_fenced_per_s", "1", fenced);
    emit_row("table3", "puddles", "log_append_per_s", "1", unfenced);
    emit_row("table3", "puddles", "log_append_per_s", "8", unfenced_8t);
    emit_row(
        "table3",
        "puddles",
        "log_append_speedup",
        "-",
        unfenced / fenced,
    );

    // ----- Puddles -----
    let (_tmp, daemon, client) = test_env();
    let pool = client
        .create_pool("table3", puddles::PoolOptions::default())
        .unwrap();
    let buffer = pool.tx(|tx| pool.alloc_raw(tx, 8192, 0)).unwrap();

    // TX NOP.
    let (d, _) = time_it(|| {
        for _ in 0..iters {
            client.tx(|_tx| Ok(())).unwrap();
        }
    });
    emit_row(
        "table3",
        "puddles",
        "tx_nop",
        "-",
        d.as_nanos() as f64 / iters as f64,
    );

    // TX_ADD 8 B / 4 KiB. The 8 B case is the per-transaction commit
    // latency tracked in BENCH_tx_commit.json.
    let mut commit_latency_ns = 0.0f64;
    for (label, len) in [("tx_add_8B", 8usize), ("tx_add_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            for _ in 0..iters {
                client
                    .tx(|tx| {
                        tx.add_range(buffer, len)?;
                        Ok(())
                    })
                    .unwrap();
            }
        });
        let ns = d.as_nanos() as f64 / iters as f64;
        if label == "tx_add_8B" {
            commit_latency_ns = ns;
        }
        emit_row("table3", "puddles", label, "-", ns);
    }

    // malloc (allocate only) and malloc+free, 8 B / 4 KiB.
    for (label, len) in [("malloc_8B", 8usize), ("malloc_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            client
                .tx(|tx| {
                    for _ in 0..iters {
                        pool.alloc_raw(tx, len, 0)?;
                    }
                    Ok(())
                })
                .unwrap();
        });
        emit_row(
            "table3",
            "puddles",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }
    for (label, len) in [("malloc_free_8B", 8usize), ("malloc_free_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            for _ in 0..iters {
                client
                    .tx(|tx| {
                        let addr = pool.alloc_raw(tx, len, 0)?;
                        pool.free_raw(tx, addr)?;
                        Ok(())
                    })
                    .unwrap();
            }
        });
        emit_row(
            "table3",
            "puddles",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }

    // ----- Chained-commit macrobenchmark: one transaction undo-logs 1 MiB
    // in 16 KiB chunks. With the default 4 MiB log puddle the whole log
    // fits one segment; a second client using 256 KiB log puddles chains
    // ~5 segments per transaction (alloc + register + release round trips
    // included), quantifying the amortized cost of the chain boundary. -----
    let region = 1usize << 20;
    let big = pool.tx(|tx| pool.alloc_raw(tx, region, 0)).unwrap();
    let chain_iters = scale.pick(4u64, 64u64);
    let chunk = 16 * 1024;
    let logged_mbps = |client: &puddles::PuddleClient| -> f64 {
        let (d, _) = time_it(|| {
            for _ in 0..chain_iters {
                client
                    .tx(|tx| {
                        for off in (0..region).step_by(chunk) {
                            tx.add_range(big + off, chunk)?;
                        }
                        Ok(())
                    })
                    .unwrap();
            }
        });
        (chain_iters as f64 * region as f64) / (1 << 20) as f64 / d.as_secs_f64()
    };
    let single_mbps = logged_mbps(&client);
    let chained_client = puddles::PuddleClient::connect_local(&daemon).unwrap();
    chained_client.set_log_puddle_size(256 * 1024);
    let chained_mbps = logged_mbps(&chained_client);
    emit_row(
        "table3",
        "puddles",
        "tx_1MiB_undo_MBps",
        "1seg",
        single_mbps,
    );
    emit_row(
        "table3",
        "puddles",
        "tx_1MiB_undo_MBps",
        "chained",
        chained_mbps,
    );

    // ----- PMDK-sim -----
    let tmp = tempfile::tempdir().unwrap();
    let pmdk = pmdk_sim::PmdkPool::create(tmp.path().join("t3.pmdk"), 256 << 20).unwrap();
    let target: pmdk_sim::Toid<[u8; 8192]> = pmdk.tx(|tx| tx.alloc([0u8; 8192])).unwrap();

    let (d, _) = time_it(|| {
        for _ in 0..iters {
            pmdk.tx(|_tx| Ok(())).unwrap();
        }
    });
    emit_row(
        "table3",
        "pmdk",
        "tx_nop",
        "-",
        d.as_nanos() as f64 / iters as f64,
    );

    for (label, len) in [("tx_add_8B", 8usize), ("tx_add_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            for _ in 0..iters {
                pmdk.tx(|tx| {
                    tx.log_range(target.direct() as usize, len)?;
                    Ok(())
                })
                .unwrap();
            }
        });
        emit_row(
            "table3",
            "pmdk",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }
    for (label, len) in [("malloc_8B", 8usize), ("malloc_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            pmdk.tx(|tx| {
                for _ in 0..iters {
                    tx.alloc_raw(len)?;
                }
                Ok(())
            })
            .unwrap();
        });
        emit_row(
            "table3",
            "pmdk",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }
    for (label, len) in [("malloc_free_8B", 8usize), ("malloc_free_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            for _ in 0..iters {
                pmdk.tx(|tx| {
                    let oid = tx.alloc_raw(len)?;
                    tx.free(pmdk_sim::Toid::<u8>::from_oid(oid))?;
                    Ok(())
                })
                .unwrap();
            }
        });
        emit_row(
            "table3",
            "pmdk",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }

    // ----- CI perf-tracking artifact -----
    if let Some(path) = json_path {
        let json = format!(
            "{{\n  \"appends_per_sec_1t\": {unfenced:.0},\n  \"appends_per_sec_8t\": {unfenced_8t:.0},\n  \"appends_per_sec_1t_fenced_baseline\": {fenced:.0},\n  \"append_speedup_vs_fenced\": {:.3},\n  \"commit_latency_ns\": {commit_latency_ns:.1},\n  \"tx_1MiB_undo_single_segment_MBps\": {single_mbps:.0},\n  \"tx_1MiB_undo_chained_MBps\": {chained_mbps:.0}\n}}\n",
            unfenced / fenced
        );
        std::fs::write(&path, json).expect("write bench json");
        eprintln!("wrote {path}");
    }
}
