//! Table 3: mean latency of API primitives (TX NOP, TX_ADD 8 B / 4 KiB,
//! malloc 8 B / 4 KiB, malloc+free 8 B / 4 KiB) for Puddles vs PMDK-sim.

use puddles_bench::{emit_header, emit_row, test_env, time_it, Scale};

fn main() {
    let scale = Scale::from_args();
    let iters = scale.pick(2_000u64, 50_000u64);

    emit_header();

    // ----- Puddles -----
    let (_tmp, _daemon, client) = test_env();
    let pool = client
        .create_pool("table3", puddles::PoolOptions::default())
        .unwrap();
    let buffer = pool.tx(|tx| pool.alloc_raw(tx, 8192, 0)).unwrap();

    // TX NOP.
    let (d, _) = time_it(|| {
        for _ in 0..iters {
            client.tx(|_tx| Ok(())).unwrap();
        }
    });
    emit_row(
        "table3",
        "puddles",
        "tx_nop",
        "-",
        d.as_nanos() as f64 / iters as f64,
    );

    // TX_ADD 8 B / 4 KiB.
    for (label, len) in [("tx_add_8B", 8usize), ("tx_add_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            for _ in 0..iters {
                client
                    .tx(|tx| {
                        tx.add_range(buffer, len)?;
                        Ok(())
                    })
                    .unwrap();
            }
        });
        emit_row(
            "table3",
            "puddles",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }

    // malloc (allocate only) and malloc+free, 8 B / 4 KiB.
    for (label, len) in [("malloc_8B", 8usize), ("malloc_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            client
                .tx(|tx| {
                    for _ in 0..iters {
                        pool.alloc_raw(tx, len, 0)?;
                    }
                    Ok(())
                })
                .unwrap();
        });
        emit_row(
            "table3",
            "puddles",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }
    for (label, len) in [("malloc_free_8B", 8usize), ("malloc_free_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            for _ in 0..iters {
                client
                    .tx(|tx| {
                        let addr = pool.alloc_raw(tx, len, 0)?;
                        pool.free_raw(tx, addr)?;
                        Ok(())
                    })
                    .unwrap();
            }
        });
        emit_row(
            "table3",
            "puddles",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }

    // ----- PMDK-sim -----
    let tmp = tempfile::tempdir().unwrap();
    let pmdk = pmdk_sim::PmdkPool::create(tmp.path().join("t3.pmdk"), 256 << 20).unwrap();
    let target: pmdk_sim::Toid<[u8; 8192]> = pmdk.tx(|tx| tx.alloc([0u8; 8192])).unwrap();

    let (d, _) = time_it(|| {
        for _ in 0..iters {
            pmdk.tx(|_tx| Ok(())).unwrap();
        }
    });
    emit_row(
        "table3",
        "pmdk",
        "tx_nop",
        "-",
        d.as_nanos() as f64 / iters as f64,
    );

    for (label, len) in [("tx_add_8B", 8usize), ("tx_add_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            for _ in 0..iters {
                pmdk.tx(|tx| {
                    tx.log_range(target.direct() as usize, len)?;
                    Ok(())
                })
                .unwrap();
            }
        });
        emit_row(
            "table3",
            "pmdk",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }
    for (label, len) in [("malloc_8B", 8usize), ("malloc_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            pmdk.tx(|tx| {
                for _ in 0..iters {
                    tx.alloc_raw(len)?;
                }
                Ok(())
            })
            .unwrap();
        });
        emit_row(
            "table3",
            "pmdk",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }
    for (label, len) in [("malloc_free_8B", 8usize), ("malloc_free_4KiB", 4096)] {
        let (d, _) = time_it(|| {
            for _ in 0..iters {
                pmdk.tx(|tx| {
                    let oid = tx.alloc_raw(len)?;
                    tx.free(pmdk_sim::Toid::<u8>::from_oid(oid))?;
                    Ok(())
                })
                .unwrap();
            }
        });
        emit_row(
            "table3",
            "pmdk",
            label,
            "-",
            d.as_nanos() as f64 / iters as f64,
        );
    }
}
