//! Fig. 1: fat-pointer overhead (%) vs native pointers for linked-list and
//! binary-tree create + traverse.

use pm_datastructures::fatptr::*;
use puddles_bench::{emit_header, emit_row, secs, Scale};

fn main() {
    let scale = Scale::from_args();
    let list_len = scale.pick(1 << 14, 1 << 16);
    let tree_height = scale.pick(14, 16);
    let repeats = scale.pick(3, 10);

    emit_header();

    // Linked list.
    let mut native_create = 0.0;
    let mut fat_create = 0.0;
    let mut native_traverse = 0.0;
    let mut fat_traverse = 0.0;
    for _ in 0..repeats {
        let mut a = Arena::new(list_len * 64);
        let mut head = std::ptr::null_mut();
        native_create += secs(|| head = build_native_list(&mut a, list_len));
        native_traverse += secs(|| {
            std::hint::black_box(traverse_native_list(head));
        });
        let mut b = Arena::new(list_len * 64);
        let mut fat_head = FatPtr::NULL;
        fat_create += secs(|| fat_head = build_fat_list(&mut b, list_len));
        fat_traverse += secs(|| {
            std::hint::black_box(traverse_fat_list(fat_head));
        });
    }
    emit_row(
        "fig1",
        "native",
        "list_create",
        &list_len.to_string(),
        native_create,
    );
    emit_row(
        "fig1",
        "fat",
        "list_create",
        &list_len.to_string(),
        fat_create,
    );
    emit_row(
        "fig1",
        "native",
        "list_traverse",
        &list_len.to_string(),
        native_traverse,
    );
    emit_row(
        "fig1",
        "fat",
        "list_traverse",
        &list_len.to_string(),
        fat_traverse,
    );
    emit_row(
        "fig1",
        "overhead_pct",
        "list_create",
        &list_len.to_string(),
        (fat_create / native_create - 1.0) * 100.0,
    );
    emit_row(
        "fig1",
        "overhead_pct",
        "list_traverse",
        &list_len.to_string(),
        (fat_traverse / native_traverse - 1.0) * 100.0,
    );

    // Binary tree.
    let nodes = (1usize << tree_height) - 1;
    let mut native_create = 0.0;
    let mut fat_create = 0.0;
    let mut native_traverse = 0.0;
    let mut fat_traverse = 0.0;
    for _ in 0..repeats {
        let mut a = Arena::new(nodes * 64);
        let mut root = std::ptr::null_mut();
        native_create += secs(|| root = build_native_tree(&mut a, tree_height as u32));
        native_traverse += secs(|| {
            std::hint::black_box(traverse_native_tree(root));
        });
        let mut b = Arena::new(nodes * 80);
        let mut fat_root = FatPtr::NULL;
        fat_create += secs(|| fat_root = build_fat_tree(&mut b, tree_height as u32));
        fat_traverse += secs(|| {
            std::hint::black_box(traverse_fat_tree(fat_root));
        });
    }
    emit_row(
        "fig1",
        "native",
        "tree_create",
        &tree_height.to_string(),
        native_create,
    );
    emit_row(
        "fig1",
        "fat",
        "tree_create",
        &tree_height.to_string(),
        fat_create,
    );
    emit_row(
        "fig1",
        "native",
        "tree_traverse",
        &tree_height.to_string(),
        native_traverse,
    );
    emit_row(
        "fig1",
        "fat",
        "tree_traverse",
        &tree_height.to_string(),
        fat_traverse,
    );
    emit_row(
        "fig1",
        "overhead_pct",
        "tree_create",
        &tree_height.to_string(),
        (fat_create / native_create - 1.0) * 100.0,
    );
    emit_row(
        "fig1",
        "overhead_pct",
        "tree_traverse",
        &tree_height.to_string(),
        (fat_traverse / native_traverse - 1.0) * 100.0,
    );
}
