//! §5.1 "Daemon primitives": round-trip latency of daemon operations
//! (no-op ping, RegLogSpace, GetNewPuddle, GetExistPuddle, recovery) over
//! both the in-process endpoint and a real UNIX-domain socket.

use puddles_bench::{emit_header, emit_row, test_env, time_it, Scale};
use puddles_proto::{PuddlePurpose, Request, Response};

fn main() {
    let scale = Scale::from_args();
    let iters = scale.pick(200u64, 5_000u64);

    emit_header();
    let (_tmp, daemon, client) = test_env();

    // In-process no-op round trip.
    let (d, _) = time_it(|| {
        for _ in 0..iters {
            client.ping().unwrap();
        }
    });
    emit_row(
        "daemon",
        "local",
        "noop_rtt_us",
        "-",
        d.as_micros() as f64 / iters as f64,
    );

    // UDS no-op round trip (the paper reports ~47 µs).
    let sock = _tmp.path().join("bench.sock");
    let _server = puddled::UdsServer::start(daemon.clone(), &sock).unwrap();
    let uds_client =
        puddles::PuddleClient::connect_uds_shared(&sock, daemon.global_space()).unwrap();
    let (d, _) = time_it(|| {
        for _ in 0..iters {
            uds_client.ping().unwrap();
        }
    });
    emit_row(
        "daemon",
        "uds",
        "noop_rtt_us",
        "-",
        d.as_micros() as f64 / iters as f64,
    );

    // GetNewPuddle (puddle file creation) and GetExistPuddle.
    let ep = daemon.endpoint_for_current_process();
    let mut created = Vec::new();
    let new_iters = iters.min(500);
    let (d, _) = time_it(|| {
        for _ in 0..new_iters {
            let resp = puddles_proto::Endpoint::call(
                &ep,
                &Request::CreatePuddle {
                    size: 1 << 20,
                    pool: None,
                    purpose: PuddlePurpose::Data,
                    mode: 0o600,
                },
            )
            .unwrap();
            if let Response::Puddle(info) = resp {
                created.push(info.id);
            }
        }
    });
    emit_row(
        "daemon",
        "local",
        "get_new_puddle_us",
        "-",
        d.as_micros() as f64 / new_iters as f64,
    );

    let (d, _) = time_it(|| {
        for id in &created {
            let _ = puddles_proto::Endpoint::call(
                &ep,
                &Request::GetPuddle {
                    id: *id,
                    writable: true,
                },
            )
            .unwrap();
        }
    });
    emit_row(
        "daemon",
        "local",
        "get_exist_puddle_us",
        "-",
        d.as_micros() as f64 / created.len().max(1) as f64,
    );

    // RegLogSpace (one-time per client) — measured by creating fresh
    // log-space puddles and registering them.
    let reg_iters = iters.min(200);
    let (d, _) = time_it(|| {
        for _ in 0..reg_iters {
            if let Response::Puddle(info) = puddles_proto::Endpoint::call(
                &ep,
                &Request::CreatePuddle {
                    size: 64 * 1024,
                    pool: None,
                    purpose: PuddlePurpose::LogSpace,
                    mode: 0o600,
                },
            )
            .unwrap()
            {
                puddles_proto::Endpoint::call(&ep, &Request::RegLogSpace { puddle: info.id })
                    .unwrap();
            }
        }
    });
    emit_row(
        "daemon",
        "local",
        "reg_log_space_us",
        "-",
        d.as_micros() as f64 / reg_iters as f64,
    );

    // Recovery latency for a clean system (no pending logs).
    let (d, _) = time_it(|| {
        client.recover().unwrap();
    });
    emit_row(
        "daemon",
        "local",
        "recovery_us",
        "clean",
        d.as_micros() as f64,
    );
}
