//! Fig. 14: sensor-network data aggregation — total time for the home node
//! to aggregate the states of N sensor nodes, for Puddles (import + pointer
//! rewrite + merge) vs PMDK (sequential open + reallocate), as the number of
//! state variables grows.

use pm_datastructures::sensor::{puddles_aggregate, PmdkSensorState, SensorState};
use puddled::{Daemon, DaemonConfig};
use puddles::PuddleClient;
use puddles_bench::{emit_header, emit_row, time_it, Scale};

fn main() {
    let scale = Scale::from_args();
    let nodes = scale.pick(8usize, 200usize);
    // Total state variables across all nodes (the paper sweeps 20k–320k).
    let var_counts: Vec<u64> = scale.pick(
        vec![500, 1_000, 2_000],
        vec![20_000, 40_000, 80_000, 160_000, 320_000],
    );
    emit_header();

    for total_vars in var_counts {
        let per_node = (total_vars as usize / nodes).max(1) as u64;

        // ----- Puddles: each sensor is its own "machine"; home imports. ----
        let export_root = tempfile::tempdir().unwrap();
        let mut exports = Vec::new();
        for node in 0..nodes {
            let dir = tempfile::tempdir().unwrap();
            let daemon = Daemon::start(DaemonConfig::for_testing(dir.path())).unwrap();
            let client = PuddleClient::connect_local(&daemon).unwrap();
            let state = SensorState::create(&client, "state", per_node).unwrap();
            state.observe(node as u64).unwrap();
            let dest = export_root.path().join(format!("node-{node}"));
            state.export(&dest).unwrap();
            exports.push(dest);
        }
        let home_dir = tempfile::tempdir().unwrap();
        let home_daemon = Daemon::start(DaemonConfig::for_testing(home_dir.path())).unwrap();
        let home_client = PuddleClient::connect_local(&home_daemon).unwrap();
        let home = SensorState::create(&home_client, "home", per_node).unwrap();
        let (total, (import_t, merge_t)) =
            time_it(|| puddles_aggregate(&home_client, &home, &exports).unwrap());
        emit_row(
            "fig14",
            "puddles",
            "aggregate_s",
            &total_vars.to_string(),
            total.as_secs_f64(),
        );
        emit_row(
            "fig14",
            "puddles",
            "import_s",
            &total_vars.to_string(),
            import_t.as_secs_f64(),
        );
        emit_row(
            "fig14",
            "puddles",
            "rewrite_merge_s",
            &total_vars.to_string(),
            merge_t.as_secs_f64(),
        );

        // ----- PMDK: sequential open + reallocation into the home pool. ----
        let pmdk_dir = tempfile::tempdir().unwrap();
        let pool_size = ((per_node as usize * 128) + (4 << 20)).next_power_of_two();
        let mut sensor_files = Vec::new();
        for node in 0..nodes {
            let path = pmdk_dir.path().join(format!("sensor-{node}.pmdk"));
            let state = PmdkSensorState::create(&path, per_node, pool_size).unwrap();
            drop(state);
            sensor_files.push(path);
        }
        let home_size = (total_vars as usize * 128 + (16 << 20)).next_power_of_two();
        let home = PmdkSensorState::create(pmdk_dir.path().join("home.pmdk"), per_node, home_size)
            .unwrap();
        let (total, _) = time_it(|| {
            for path in &sensor_files {
                home.aggregate_from_file(path).unwrap();
            }
        });
        emit_row(
            "fig14",
            "pmdk",
            "aggregate_s",
            &total_vars.to_string(),
            total.as_secs_f64(),
        );
    }
}
