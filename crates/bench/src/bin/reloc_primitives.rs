//! §5.1 "Relocatability primitives": export time vs data size, import time,
//! and pointer-rewrite time vs number of pointers.

use pm_datastructures::sensor::SensorState;
use puddles_bench::{emit_header, emit_row, test_env, time_it, Scale};

fn main() {
    let scale = Scale::from_args();
    emit_header();

    // Export / import cost vs pool size (the paper uses 16 B – 16 MiB).
    let sizes: &[(&str, u64)] = &[("16B", 2), ("64KiB", 4_096), ("1MiB", 65_536)];
    for (label, vars) in sizes {
        let (_tmp, _daemon, client) = test_env();
        let state = SensorState::create(&client, "export-src", *vars).unwrap();
        state.observe(1).unwrap();
        let dest = _tmp.path().join(format!("export-{label}"));
        let (d, _) = time_it(|| state.export(&dest).unwrap());
        emit_row("reloc", "puddles", "export_s", label, d.as_secs_f64());

        let (d, imported) = time_it(|| client.import_pool(&dest, "import-copy").unwrap());
        emit_row(
            "reloc",
            "puddles",
            "import_and_rewrite_s",
            label,
            d.as_secs_f64(),
        );
        drop(imported);
    }

    // Pointer-rewrite cost vs number of pointers (20 / 2 000 / 2 000 000 in
    // the paper; scaled down by default).
    let counts: &[u64] = &[20, scale.pick(2_000, 2_000), scale.pick(20_000, 2_000_000)];
    for &count in counts {
        let (_tmp, _daemon, client) = test_env();
        let state = SensorState::create(&client, "rewrite-src", count).unwrap();
        let dest = _tmp.path().join("rewrite-export");
        state.export(&dest).unwrap();
        // Import maps + rewrites the root puddle; walking the whole imported
        // structure forces the rewrite of every puddle in the pool.
        let (d, pool) = time_it(|| {
            let pool = client.import_pool(&dest, "rewrite-copy").unwrap();
            pool.ensure_all_mapped().unwrap();
            pool
        });
        emit_row(
            "reloc",
            "puddles",
            "pointer_rewrite_s",
            &format!("{count}_ptrs"),
            d.as_secs_f64(),
        );
        drop(pool);
    }
}
