//! Deep torture sweep driver for CI and soak runs.
//!
//! Runs many seeded torture trials (see `puddles::torture`) and reports
//! per-trial fault/ack statistics. Unlike the bounded `cargo test` sweep
//! this binary is meant for long nightly runs:
//!
//! ```text
//! torture_sweep [--seeds N] [--start SEED] [--threads N] [--json]
//! ```
//!
//! On a failure it prints the seed + fault trace, writes
//! `target/torture_seed.txt` (uploaded by CI), and exits nonzero.

use puddles::torture::{run_sweep_with, SweepOptions, TortureFailure};
use std::process::exit;

struct Args {
    seeds: u64,
    start: u64,
    threads: u64,
    json: bool,
    opts: SweepOptions,
}

fn parse_args() -> Result<Args, String> {
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
        .min(8);
    let mut args = Args {
        seeds: 500,
        start: 0x7011_70BE,
        threads: default_threads,
        json: false,
        opts: SweepOptions::default(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seeds" => {
                args.seeds = iter
                    .next()
                    .ok_or("--seeds needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?
            }
            "--start" => {
                args.start = iter
                    .next()
                    .ok_or("--start needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --start: {e}"))?
            }
            "--threads" => {
                args.threads = iter
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--json" => args.json = true,
            // The determinism gate: run each seed twice, fail on the first
            // fault-trace or history divergence.
            "--replay-check" => args.opts.replay_check = true,
            // Free-running wall-clock trials (connection-reset coverage,
            // no replay guarantee).
            "--wall-clock" => args.opts.wall_clock = true,
            "--help" | "-h" => {
                println!(
                    "usage: torture_sweep [--seeds N] [--start SEED] [--threads N] \
                     [--json] [--replay-check] [--wall-clock]"
                );
                exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn report_failure(failure: &TortureFailure) -> ! {
    eprintln!("{failure}");
    let _ = std::fs::create_dir_all("target");
    let _ = std::fs::write(
        "target/torture_seed.txt",
        format!("TORTURE_SEED={} TORTURE_TRIALS=1\n", failure.seed),
    );
    exit(1);
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("torture_sweep: {e}");
            exit(2);
        }
    };
    match run_sweep_with(args.start, args.seeds, args.threads, args.opts) {
        Ok(reports) => {
            let injected: u64 = reports.iter().map(|r| r.injected).sum();
            let acked: u64 = reports.iter().map(|r| r.acked_ops).sum();
            let kills: usize = reports.iter().map(|r| r.kills).sum();
            if args.json {
                println!(
                    "{{\"seeds\": {}, \"start\": {}, \"injected_faults\": {injected}, \
                     \"acked_ops\": {acked}, \"mid_phase_kills\": {kills}}}",
                    reports.len(),
                    args.start
                );
            } else {
                println!(
                    "torture_sweep: {} seeds passed (start {}): {injected} faults injected, \
                     {acked} ops acknowledged, {kills} mid-phase kills",
                    reports.len(),
                    args.start
                );
            }
        }
        Err(failure) => report_failure(&failure),
    }
}
