//! Connection-scaling benchmark for the daemon's reactor runtime.
//!
//! The old `UdsServer` spawned one OS thread per connection, hard-capped at
//! 256; the sharded reactor runtime holds one fd + state machine per
//! connection, spreads connections across `min(cores, 4)` reactor threads,
//! and executes requests on a small worker pool. This harness measures two
//! axes:
//!
//! **Population scaling** — requests/s and p99 latency with 64 / 2048 /
//! 10000 **concurrently connected** clients in three mixes:
//!
//! * `all_active` — every connection issues `Ping` requests back-to-back
//!   (driver threads multiplex many connections each, so the *daemon*'s
//!   concurrency is what is measured, not the harness's thread count);
//! * `mostly_idle` — the same connection count, but only 1 in 16
//!   connections is active; the rest sit connected and silent. This is the
//!   "millions of users" shape: a large connected population, a small hot
//!   set;
//! * `registry_churn` — the `mostly_idle` population, but the hot set
//!   issues `RegisterPtrMap` mutations instead of pings, so every request
//!   takes the WAL-append path while thousands of idle connections hold
//!   reactor slots.
//!
//! **Pipelining × reactors** — protocol-v2 clients keep a window of
//! `depth` enveloped requests in flight per connection against daemons
//! configured with 1 / 2 / 4 reactors. The `--assert-scaling` flag turns
//! the headline claim into a hard check: 4 reactors with pipelining must
//! deliver at least 2x the single-reactor depth-1 baseline.
//!
//! Output rows: `conn_scaling,puddles,<op>,<conns>,<v>`. Pass
//! `--json <path>` to also write `BENCH_conn_scaling.json` for CI.

use puddled::ServerConfig;
use puddles_bench::{emit_header, emit_row, Scale};
use puddles_proto::frame::V2_MAGIC;
use puddles_proto::{
    read_frame, write_frame, Credentials, PtrField, PtrMapDecl, Request, RequestEnvelope, Response,
    ServerFrame,
};
use std::collections::HashMap;
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Raises `RLIMIT_NOFILE` to its hard limit and returns the resulting
/// soft limit: 10000 connections mean >20000 fds in this process (client +
/// daemon ends), far above the usual 1024 soft default.
fn raise_nofile_limit() -> u64 {
    let mut lim = libc::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid in/out pointer for both calls.
    unsafe {
        if libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim.rlim_cur < lim.rlim_max {
            lim.rlim_cur = lim.rlim_max;
            let _ = libc::setrlimit(libc::RLIMIT_NOFILE, &lim);
            let _ = libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim);
        }
    }
    lim.rlim_cur
}

/// Connects and handshakes one v1 client connection (with a short retry: a
/// burst of 10000 connects can transiently fill the listen backlog).
fn connect(socket: &Path) -> UnixStream {
    let mut delay = Duration::from_millis(1);
    for attempt in 0.. {
        match UnixStream::connect(socket) {
            Ok(mut stream) => {
                write_frame(&mut stream, &Request::hello(Credentials::current_process()))
                    .expect("hello");
                let resp: Response = read_frame(&mut stream).expect("welcome");
                assert!(matches!(resp, Response::Welcome { .. }));
                return stream;
            }
            Err(_) if attempt < 50 => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
            Err(e) => panic!("connect failed after retries: {e}"),
        }
    }
    unreachable!()
}

/// Connects and handshakes one protocol-v2 (enveloped, pipelined)
/// connection.
fn connect_v2(socket: &Path) -> UnixStream {
    let mut stream = connect_raw(socket);
    stream.write_all(&V2_MAGIC).expect("v2 magic");
    write_frame(
        &mut stream,
        &RequestEnvelope {
            req_id: 0,
            req: Request::hello(Credentials::current_process()),
        },
    )
    .expect("hello");
    match read_frame::<_, ServerFrame>(&mut stream).expect("welcome") {
        ServerFrame::Enveloped(env) => {
            assert_eq!(env.req_id, 0);
            assert!(matches!(env.resp, Response::Welcome { .. }));
        }
        ServerFrame::Bare(resp) => panic!("expected enveloped welcome, got bare {resp:?}"),
    }
    stream
}

/// Raw connect with the same backlog retry as [`connect`].
fn connect_raw(socket: &Path) -> UnixStream {
    let mut delay = Duration::from_millis(1);
    for attempt in 0.. {
        match UnixStream::connect(socket) {
            Ok(stream) => return stream,
            Err(_) if attempt < 50 => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
            Err(e) => panic!("connect failed after retries: {e}"),
        }
    }
    unreachable!()
}

/// What the hot set of a population mix sends.
#[derive(Clone, Copy)]
enum MixOp {
    /// No-op round trips: measures pure dispatch overhead.
    Ping,
    /// Registry mutations: every request appends to the metadata WAL.
    /// A bounded set of type ids is re-registered round-robin so the
    /// registry churns without growing unboundedly.
    RegistryChurn,
}

impl MixOp {
    fn request(self, shard: usize, seq: u64) -> Request {
        match self {
            MixOp::Ping => Request::Ping,
            MixOp::RegistryChurn => {
                let slot = seq % 32;
                Request::RegisterPtrMap {
                    decl: PtrMapDecl {
                        type_id: 0xC0DE_0000 + (shard as u64) * 64 + slot,
                        type_name: format!("bench::Churn{shard}x{slot}"),
                        size: 64,
                        fields: vec![PtrField {
                            offset: 8 * (seq % 4),
                            target_type: 0,
                        }],
                    },
                }
            }
        }
    }
}

struct MixResult {
    reqs_per_s: f64,
    p99_us: f64,
}

/// Computes the p99 from a list of nanosecond latencies.
fn p99_us(latencies_ns: &mut [u64]) -> f64 {
    latencies_ns.sort_unstable();
    latencies_ns
        .get(latencies_ns.len().saturating_sub(1) * 99 / 100)
        .copied()
        .unwrap_or(0) as f64
        / 1000.0
}

/// Drives `conns` live connections for `duration`, with only every
/// `active_stride`-th connection issuing `op` requests (1 = all active).
/// The active set is split across a handful of driver threads, each
/// cycling round-robin over its share.
fn run_mix(
    socket: &Path,
    conns: usize,
    active_stride: usize,
    op: MixOp,
    duration: Duration,
) -> MixResult {
    // Establish the whole population first; it stays connected throughout.
    let streams: Vec<UnixStream> = (0..conns).map(|_| connect(socket)).collect();
    let mut active: Vec<UnixStream> = Vec::new();
    let mut idle: Vec<UnixStream> = Vec::new();
    for (i, stream) in streams.into_iter().enumerate() {
        if i % active_stride == 0 {
            active.push(stream);
        } else {
            idle.push(stream);
        }
    }

    let drivers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16)
        .min(active.len());
    let mut shards: Vec<Vec<UnixStream>> = (0..drivers).map(|_| Vec::new()).collect();
    for (i, stream) in active.into_iter().enumerate() {
        shards[i % drivers].push(stream);
    }

    let start = Instant::now();
    let workers: Vec<_> = shards
        .into_iter()
        .enumerate()
        .map(|(shard_no, shard)| {
            std::thread::spawn(move || {
                let mut latencies_ns: Vec<u64> = Vec::new();
                let mut done = 0u64;
                'outer: loop {
                    for stream in &shard {
                        if start.elapsed() >= duration {
                            break 'outer;
                        }
                        let mut stream = stream;
                        let t0 = Instant::now();
                        if write_frame(&mut stream, &op.request(shard_no, done)).is_err() {
                            break 'outer;
                        }
                        let resp: Response = match read_frame(&mut stream) {
                            Ok(resp) => resp,
                            Err(_) => break 'outer,
                        };
                        assert!(!matches!(resp, Response::Error { .. }), "{resp:?}");
                        latencies_ns.push(t0.elapsed().as_nanos() as u64);
                        done += 1;
                    }
                }
                (done, latencies_ns, shard)
            })
        })
        .collect();

    let mut total = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut keep_alive: Vec<Vec<UnixStream>> = Vec::new();
    for worker in workers {
        let (done, mut lat, shard) = worker.join().expect("driver");
        total += done;
        latencies.append(&mut lat);
        keep_alive.push(shard);
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(total > 0, "no requests completed at {conns} connections");
    // The idle population stayed connected for the whole measurement.
    drop(idle);
    MixResult {
        reqs_per_s: total as f64 / elapsed,
        p99_us: p99_us(&mut latencies),
    }
}

/// Drives `conns` protocol-v2 connections, each keeping a window of
/// `depth` enveloped pings in flight (one thread per connection: the
/// window, not the harness, provides the concurrency under test).
fn run_pipelined(socket: &Path, conns: usize, depth: usize, duration: Duration) -> MixResult {
    let start = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|_| {
            let socket = socket.to_path_buf();
            std::thread::spawn(move || {
                let mut stream = connect_v2(&socket);
                let mut sent_at: HashMap<u64, Instant> = HashMap::with_capacity(depth);
                let mut latencies_ns: Vec<u64> = Vec::new();
                let mut next_id: u64 = 1;
                let mut done = 0u64;
                // Prime the window.
                for _ in 0..depth {
                    sent_at.insert(next_id, Instant::now());
                    write_frame(
                        &mut stream,
                        &RequestEnvelope {
                            req_id: next_id,
                            req: Request::Ping,
                        },
                    )
                    .expect("prime");
                    next_id += 1;
                }
                // Steady state: read one completion, top the window back up.
                while start.elapsed() < duration {
                    let env = match read_frame::<_, ServerFrame>(&mut stream).expect("response") {
                        ServerFrame::Enveloped(env) => env,
                        ServerFrame::Bare(resp) => panic!("unexpected bare frame {resp:?}"),
                    };
                    let t0 = sent_at.remove(&env.req_id).expect("unknown req_id");
                    latencies_ns.push(t0.elapsed().as_nanos() as u64);
                    done += 1;
                    sent_at.insert(next_id, Instant::now());
                    write_frame(
                        &mut stream,
                        &RequestEnvelope {
                            req_id: next_id,
                            req: Request::Ping,
                        },
                    )
                    .expect("refill");
                    next_id += 1;
                }
                // Drain the window so the connection closes cleanly.
                while !sent_at.is_empty() {
                    let env = match read_frame::<_, ServerFrame>(&mut stream).expect("drain") {
                        ServerFrame::Enveloped(env) => env,
                        ServerFrame::Bare(resp) => panic!("unexpected bare frame {resp:?}"),
                    };
                    let t0 = sent_at.remove(&env.req_id).expect("unknown req_id");
                    latencies_ns.push(t0.elapsed().as_nanos() as u64);
                    done += 1;
                }
                (done, latencies_ns)
            })
        })
        .collect();

    let mut total = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for worker in workers {
        let (done, mut lat) = worker.join().expect("pipelined driver");
        total += done;
        latencies.append(&mut lat);
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert!(
        total > 0,
        "no pipelined requests completed at depth {depth}"
    );
    MixResult {
        reqs_per_s: total as f64 / elapsed,
        p99_us: p99_us(&mut latencies),
    }
}

/// `--hold-socket` mode: binds a daemon at `socket` and drives light
/// Ping / CreatePool / DropPool load over one v1 connection for
/// `hold_ms`, so an external `puddle-stat` can poll live, non-empty
/// histograms (the CI observability smoke gate).
fn run_hold(socket: &Path, hold_ms: u64) {
    let tmp = tempfile::tempdir().expect("tempdir");
    let daemon =
        puddled::Daemon::start(puddled::DaemonConfig::for_testing(tmp.path())).expect("daemon");
    let _server = puddled::UdsServer::start(daemon, socket).expect("server");
    println!(
        "# holding {} for {hold_ms}ms under light load",
        socket.display()
    );

    let mut stream = connect(socket);
    let deadline = Instant::now() + Duration::from_millis(hold_ms);
    let mut seq = 0u64;
    while Instant::now() < deadline {
        let pool = format!("hold{}", seq % 8);
        let reqs = [
            Request::Ping,
            Request::CreatePool {
                name: pool.clone(),
                root_size: 4096,
                mode: 0o600,
            },
            Request::DropPool { name: pool },
        ];
        for req in reqs {
            write_frame(&mut stream, &req).expect("hold request");
            let resp: Response = read_frame(&mut stream).expect("hold response");
            // Ping answers Welcome here (it measures daemon latency);
            // only hard protocol errors on Ping should abort the hold.
            if matches!(req, Request::Ping) {
                assert!(!matches!(resp, Response::Error { .. }), "{resp:?}");
            }
        }
        seq += 1;
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn main() {
    let nofile = raise_nofile_limit();
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    let assert_scaling = args.iter().any(|a| a == "--assert-scaling");
    let hold_socket = args
        .iter()
        .position(|a| a == "--hold-socket")
        .and_then(|i| args.get(i + 1).cloned());
    let hold_ms: u64 = args
        .iter()
        .position(|a| a == "--hold-ms")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("bad --hold-ms"))
        .unwrap_or(5_000);
    emit_header();

    // The hold phase runs first so an external poller gets a live socket
    // as soon as possible; the measurement matrix uses fresh daemons and
    // is unaffected.
    if let Some(path) = &hold_socket {
        run_hold(Path::new(path), hold_ms);
    }

    let mut json = String::from("{\n  \"experiment\": \"conn_scaling\",\n  \"rows\": [\n");
    let mut first = true;
    let mut push_row = |json: &mut String, row: String| {
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&row);
    };

    // ---- Population scaling: one daemon, three mixes, up to 10k conns ----
    {
        let tmp = tempfile::tempdir().expect("tempdir");
        let daemon =
            puddled::Daemon::start(puddled::DaemonConfig::for_testing(tmp.path())).expect("daemon");
        let socket = tmp.path().join("conn_scaling.sock");
        let config = ServerConfig {
            // 10k concurrent connections is the acceptance bar (old hard
            // cap: 256 threads); leave headroom above it.
            max_connections: 16384,
            ..ServerConfig::default()
        };
        let _server =
            puddled::UdsServer::start_with_config(daemon, &socket, config).expect("server");

        // Quick scale shortens the measurement window, not the population.
        // Each connection costs two fds in this one process (client end +
        // daemon end); if the fd rlimit cannot hold the 10k cell even
        // after being raised, clamp it rather than wedging the acceptor
        // against EMFILE.
        let population_cap = ((nofile.saturating_sub(256)) / 2) as usize;
        let big = 10_000.min(population_cap);
        if big < 10_000 {
            println!("# RLIMIT_NOFILE {nofile} clamps the large population cell to {big}");
        }
        let conn_counts: &[usize] = &[64, 2048, big];
        let duration = Duration::from_millis(scale.pick(300, 2000));
        let mixes: &[(&str, usize, MixOp)] = &[
            ("all_active", 1, MixOp::Ping),
            ("mostly_idle", 16, MixOp::Ping),
            ("registry_churn", 16, MixOp::RegistryChurn),
        ];
        for &conns in conn_counts {
            for &(mix, stride, op) in mixes {
                let result = run_mix(&socket, conns, stride, op, duration);
                emit_row(
                    "conn_scaling",
                    "puddles",
                    &format!("{mix}_reqs_per_s"),
                    &conns.to_string(),
                    result.reqs_per_s,
                );
                emit_row(
                    "conn_scaling",
                    "puddles",
                    &format!("{mix}_p99_us"),
                    &conns.to_string(),
                    result.p99_us,
                );
                push_row(
                    &mut json,
                    format!(
                        "    {{\"mix\": \"{mix}\", \"connections\": {conns}, \
                         \"reqs_per_s\": {:.1}, \"p99_us\": {:.1}}}",
                        result.reqs_per_s, result.p99_us
                    ),
                );
            }
        }
    }

    // ---- Pipelining x reactors: fresh daemon per reactor count ----------
    let pipelined_conns = 64;
    let depths: &[usize] = &[1, 16, 64];
    let reactor_counts: &[usize] = &[1, 2, 4];
    let pipe_duration = Duration::from_millis(scale.pick(300, 2000));
    let mut pipelined: Vec<(usize, usize, f64)> = Vec::new();
    for &reactors in reactor_counts {
        let tmp = tempfile::tempdir().expect("tempdir");
        let daemon =
            puddled::Daemon::start(puddled::DaemonConfig::for_testing(tmp.path())).expect("daemon");
        let socket = tmp.path().join("conn_scaling.sock");
        let config = ServerConfig {
            reactors,
            ..ServerConfig::default()
        };
        let _server =
            puddled::UdsServer::start_with_config(daemon, &socket, config).expect("server");
        for &depth in depths {
            let result = run_pipelined(&socket, pipelined_conns, depth, pipe_duration);
            emit_row(
                "conn_scaling",
                "puddles",
                &format!("pipelined_r{reactors}_d{depth}_reqs_per_s"),
                &pipelined_conns.to_string(),
                result.reqs_per_s,
            );
            emit_row(
                "conn_scaling",
                "puddles",
                &format!("pipelined_r{reactors}_d{depth}_p99_us"),
                &pipelined_conns.to_string(),
                result.p99_us,
            );
            push_row(
                &mut json,
                format!(
                    "    {{\"mix\": \"pipelined\", \"connections\": {pipelined_conns}, \
                     \"reactors\": {reactors}, \"depth\": {depth}, \
                     \"reqs_per_s\": {:.1}, \"p99_us\": {:.1}}}",
                    result.reqs_per_s, result.p99_us
                ),
            );
            pipelined.push((reactors, depth, result.reqs_per_s));
        }
    }

    json.push_str("\n  ]\n}\n");
    if let Some(path) = json_path {
        std::fs::write(&path, json).expect("write bench json");
    }

    // Headline scaling check: 4 reactors + pipelining vs. 1 reactor at
    // depth 1. Reported always; enforced under `--assert-scaling`.
    let baseline = pipelined
        .iter()
        .find(|&&(r, d, _)| r == 1 && d == 1)
        .map(|&(_, _, v)| v)
        .expect("baseline cell");
    let best = pipelined
        .iter()
        .filter(|&&(r, d, _)| r == 4 && d >= 16)
        .map(|&(_, _, v)| v)
        .fold(0.0f64, f64::max);
    let ratio = best / baseline;
    println!("# pipelined 4-reactor best vs 1-reactor depth-1 baseline: {ratio:.2}x");
    if assert_scaling {
        assert!(
            ratio >= 2.0,
            "pipelined 4-reactor throughput ({best:.0} reqs/s) is below 2x the \
             single-reactor depth-1 baseline ({baseline:.0} reqs/s): {ratio:.2}x"
        );
    }
    let _ = std::io::stdout().flush();
}
