//! Connection-scaling benchmark for the daemon's reactor runtime.
//!
//! The old `UdsServer` spawned one OS thread per connection, hard-capped at
//! 256; the reactor holds one fd + state machine per connection and
//! executes requests on a small worker pool. This harness measures
//! requests/s and p99 latency with 64 / 512 / 2048 **concurrently
//! connected** clients in two mixes:
//!
//! * `all_active` — every connection issues `Ping` requests back-to-back
//!   (driver threads multiplex many connections each, so the *daemon*'s
//!   concurrency is what is measured, not the harness's thread count);
//! * `mostly_idle` — the same connection count, but only 1 in 16
//!   connections is active; the rest sit connected and silent. This is the
//!   "millions of users" shape: a large connected population, a small hot
//!   set.
//!
//! Output rows: `conn_scaling,puddles,<mix>_{reqs_per_s|p99_us},<conns>,<v>`.
//! Pass `--json <path>` to also write `BENCH_conn_scaling.json` for CI.

use puddles_bench::{emit_header, emit_row, Scale};
use puddles_proto::{read_frame, write_frame, Credentials, Request, Response};
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// Raises `RLIMIT_NOFILE` to its hard limit: 2048 connections mean >4096
/// fds in this process (client + daemon ends), above the usual 1024 soft
/// default.
fn raise_nofile_limit() {
    let mut lim = libc::rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid in/out pointer for both calls.
    unsafe {
        if libc::getrlimit(libc::RLIMIT_NOFILE, &mut lim) == 0 && lim.rlim_cur < lim.rlim_max {
            lim.rlim_cur = lim.rlim_max;
            let _ = libc::setrlimit(libc::RLIMIT_NOFILE, &lim);
        }
    }
}

/// Connects and handshakes one client connection (with a short retry: a
/// burst of 2048 connects can transiently fill the listen backlog).
fn connect(socket: &Path) -> UnixStream {
    let mut delay = Duration::from_millis(1);
    for attempt in 0.. {
        match UnixStream::connect(socket) {
            Ok(mut stream) => {
                write_frame(
                    &mut stream,
                    &Request::Hello {
                        creds: Credentials::current_process(),
                    },
                )
                .expect("hello");
                let resp: Response = read_frame(&mut stream).expect("welcome");
                assert!(matches!(resp, Response::Welcome { .. }));
                return stream;
            }
            Err(_) if attempt < 50 => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(100));
            }
            Err(e) => panic!("connect failed after retries: {e}"),
        }
    }
    unreachable!()
}

struct MixResult {
    reqs_per_s: f64,
    p99_us: f64,
}

/// Drives `conns` live connections for `duration`, with only every
/// `active_stride`-th connection issuing requests (1 = all active). The
/// active set is split across a handful of driver threads, each cycling
/// round-robin over its share.
fn run_mix(socket: &Path, conns: usize, active_stride: usize, duration: Duration) -> MixResult {
    // Establish the whole population first; it stays connected throughout.
    let streams: Vec<UnixStream> = (0..conns).map(|_| connect(socket)).collect();
    let mut active: Vec<UnixStream> = Vec::new();
    let mut idle: Vec<UnixStream> = Vec::new();
    for (i, stream) in streams.into_iter().enumerate() {
        if i % active_stride == 0 {
            active.push(stream);
        } else {
            idle.push(stream);
        }
    }

    let drivers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(2, 16)
        .min(active.len());
    let mut shards: Vec<Vec<UnixStream>> = (0..drivers).map(|_| Vec::new()).collect();
    for (i, stream) in active.into_iter().enumerate() {
        shards[i % drivers].push(stream);
    }

    let start = Instant::now();
    let workers: Vec<_> = shards
        .into_iter()
        .map(|shard| {
            std::thread::spawn(move || {
                let mut latencies_ns: Vec<u64> = Vec::new();
                let mut done = 0u64;
                'outer: loop {
                    for stream in &shard {
                        if start.elapsed() >= duration {
                            break 'outer;
                        }
                        let mut stream = stream;
                        let t0 = Instant::now();
                        if write_frame(&mut stream, &Request::Ping).is_err() {
                            break 'outer;
                        }
                        let resp: Response = match read_frame(&mut stream) {
                            Ok(resp) => resp,
                            Err(_) => break 'outer,
                        };
                        assert!(!matches!(resp, Response::Error { .. }));
                        latencies_ns.push(t0.elapsed().as_nanos() as u64);
                        done += 1;
                    }
                }
                (done, latencies_ns, shard)
            })
        })
        .collect();

    let mut total = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut keep_alive: Vec<Vec<UnixStream>> = Vec::new();
    for worker in workers {
        let (done, mut lat, shard) = worker.join().expect("driver");
        total += done;
        latencies.append(&mut lat);
        keep_alive.push(shard);
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let p99 = latencies
        .get(latencies.len().saturating_sub(1) * 99 / 100)
        .copied()
        .unwrap_or(0);
    assert!(total > 0, "no requests completed at {conns} connections");
    // The idle population stayed connected for the whole measurement.
    drop(idle);
    MixResult {
        reqs_per_s: total as f64 / elapsed,
        p99_us: p99 as f64 / 1000.0,
    }
}

fn main() {
    raise_nofile_limit();
    let scale = Scale::from_args();
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };
    emit_header();

    let tmp = tempfile::tempdir().expect("tempdir");
    let daemon =
        puddled::Daemon::start(puddled::DaemonConfig::for_testing(tmp.path())).expect("daemon");
    let socket = tmp.path().join("conn_scaling.sock");
    let _server = puddled::UdsServer::start(daemon, &socket).expect("server");

    // 2048 connections is the acceptance bar (old hard cap: 256 threads);
    // quick scale keeps the measurement window short, not the population.
    let conn_counts: &[usize] = &[64, 512, 2048];
    let duration = Duration::from_millis(scale.pick(300, 2000));

    let mut json = String::from("{\n  \"experiment\": \"conn_scaling\",\n  \"rows\": [\n");
    let mut first = true;
    for &conns in conn_counts {
        for (mix, stride) in [("all_active", 1usize), ("mostly_idle", 16)] {
            let result = run_mix(&socket, conns, stride, duration);
            emit_row(
                "conn_scaling",
                "puddles",
                &format!("{mix}_reqs_per_s"),
                &conns.to_string(),
                result.reqs_per_s,
            );
            emit_row(
                "conn_scaling",
                "puddles",
                &format!("{mix}_p99_us"),
                &conns.to_string(),
                result.p99_us,
            );
            if !first {
                json.push_str(",\n");
            }
            first = false;
            json.push_str(&format!(
                "    {{\"mix\": \"{mix}\", \"connections\": {conns}, \
                 \"reqs_per_s\": {:.1}, \"p99_us\": {:.1}}}",
                result.reqs_per_s, result.p99_us
            ));
        }
    }
    json.push_str("\n  ]\n}\n");
    if let Some(path) = json_path {
        std::fs::write(&path, json).expect("write bench json");
    }
    let _ = std::io::stdout().flush();
}
