//! Criterion microbenchmarks for the Table 3 primitives and the Fig. 1
//! pointer-dereference cost (quick, statistically sampled versions of the
//! corresponding harness binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use pm_datastructures::fatptr::{
    build_fat_list, build_native_list, traverse_fat_list, traverse_native_list, Arena,
};
use puddles_bench::test_env;

fn bench_tx_primitives(c: &mut Criterion) {
    let (_tmp, _daemon, client) = test_env();
    let pool = client
        .create_pool("criterion", puddles::PoolOptions::default())
        .unwrap();
    let buffer = pool.tx(|tx| pool.alloc_raw(tx, 4096, 0)).unwrap();

    c.bench_function("puddles/tx_nop", |b| {
        b.iter(|| client.tx(|_tx| Ok(())).unwrap())
    });
    c.bench_function("puddles/tx_add_8B", |b| {
        b.iter(|| {
            client
                .tx(|tx| {
                    tx.add_range(buffer, 8)?;
                    Ok(())
                })
                .unwrap()
        })
    });

    let tmp = tempfile::tempdir().unwrap();
    let pmdk = pmdk_sim::PmdkPool::create(tmp.path().join("c.pmdk"), 64 << 20).unwrap();
    let target: pmdk_sim::Toid<[u8; 4096]> = pmdk.tx(|tx| tx.alloc([0u8; 4096])).unwrap();
    c.bench_function("pmdk/tx_nop", |b| b.iter(|| pmdk.tx(|_tx| Ok(())).unwrap()));
    c.bench_function("pmdk/tx_add_8B", |b| {
        b.iter(|| {
            pmdk.tx(|tx| {
                tx.log_range(target.direct() as usize, 8)?;
                Ok(())
            })
            .unwrap()
        })
    });
}

fn bench_pointer_traversal(c: &mut Criterion) {
    let n = 1 << 14;
    let mut a = Arena::new(n * 64);
    let native = build_native_list(&mut a, n);
    let mut b_arena = Arena::new(n * 64);
    let fat = build_fat_list(&mut b_arena, n);
    c.bench_function("fig1/native_list_traverse", |b| {
        b.iter(|| traverse_native_list(native))
    });
    c.bench_function("fig1/fat_list_traverse", |b| {
        b.iter(|| traverse_fat_list(fat))
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tx_primitives, bench_pointer_traversal
}
criterion_main!(benches);
