//! The log: a bounded sequence of log entries plus control metadata
//! (Fig. 6a).
//!
//! # Volatile-cursor design
//!
//! Validity of a log entry is decided entirely by `checksum matches ∧
//! gen == header.gen ∧ seq ∈ range`: readers ([`LogRef::iter`]) scan from
//! the first entry and stop at the first slot whose checksum or generation
//! does not verify. Because the scan never consults a durable head pointer,
//! the append cursor can live in DRAM ([`LogWriter`]), and a steady-state
//! append costs **one unfenced flush** — no header rewrite, no `sfence`.
//! The single fence a transaction needs is the one its commit already
//! issues at each stage boundary of Fig. 7: by the time the sequence range
//! advances (a fenced header write), every entry flushed before it is
//! durable. A crash before that fence leaves some durable prefix of the
//! appended entries, which is exactly what stage-aware replay needs.
//!
//! The persistent header is touched only by [`LogRef::init`],
//! [`LogWriter::begin`], [`LogRef::set_seq_range`] and [`LogRef::reset`].
//! Its `gen` field is bumped whenever a transaction (re)starts the log, so
//! entries left over from an earlier transaction — which can share offsets
//! and valid checksums with freshly appended ones — terminate the scan by
//! generation mismatch instead of being replayed.

use crate::entry::{EntryKind, LogEntryHeader, ReplayOrder, ENTRY_ALIGN, ENTRY_HEADER_SIZE};
use puddles_pmem::failpoint;
use puddles_pmem::persist;
use puddles_pmem::util::align_up;
use puddles_pmem::{PmError, Result};

/// Magic number identifying an initialized log area.
pub const LOG_MAGIC: u64 = 0x5055_4444_4c4f_4732; // "PUDDLOG2"

/// The sequence range of a log: entries whose sequence number lies strictly
/// between `lo` and `hi` are replayed after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqRange {
    /// Exclusive lower bound.
    pub lo: u32,
    /// Exclusive upper bound.
    pub hi: u32,
}

impl SeqRange {
    /// Returns `true` if entries with sequence number `seq` are live.
    pub fn contains(&self, seq: u32) -> bool {
        seq > self.lo && seq < self.hi
    }
}

/// On-PM header at the start of a log area.
///
/// `head_off`/`tail_off`/`num_entries` are *advisory*: they are written by
/// the durable-header append path ([`LogRef::append`]) and by control
/// operations, but the fast path ([`LogWriter`]) leaves them untouched —
/// readers must use the checksum/generation scan, never these fields.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct LogHeader {
    magic: u64,
    seq_lo: u32,
    seq_hi: u32,
    /// Advisory offset (from the log base) of the next free byte.
    head_off: u64,
    /// Advisory offset of the most recently appended entry (`u64::MAX` if
    /// none).
    tail_off: u64,
    /// Total capacity of the log area in bytes, including this header.
    capacity: u64,
    /// Advisory number of entries appended since the last reset.
    num_entries: u64,
    /// Current log generation; only entries carrying this value are valid.
    gen: u32,
    _pad: u32,
}

/// Size of the log header in bytes.
pub const LOG_HEADER_SIZE: usize = std::mem::size_of::<LogHeader>();

/// A view over a log area in (persistent) memory.
///
/// `LogRef` does not own the memory; it is created over a log puddle's heap
/// by `libtx`, or over a mapped log puddle by the daemon during recovery.
#[derive(Debug, Clone, Copy)]
pub struct LogRef {
    base: *mut u8,
    capacity: usize,
}

// SAFETY: `LogRef` is a typed pointer+length pair; the memory it points to
// is only mutated through `&mut`-free raw-pointer writes that the owners
// (one thread per log, or the daemon during single-threaded recovery)
// serialize externally.
unsafe impl Send for LogRef {}

impl LogRef {
    /// Creates a view over `capacity` bytes of log memory at `base`.
    ///
    /// # Safety
    ///
    /// `base` must be valid for reads and writes of `capacity` bytes for the
    /// lifetime of the returned value, and no other code may concurrently
    /// mutate the range.
    pub unsafe fn from_raw(base: *mut u8, capacity: usize) -> Self {
        assert!(capacity >= LOG_HEADER_SIZE + ENTRY_HEADER_SIZE);
        LogRef { base, capacity }
    }

    fn header(&self) -> *mut LogHeader {
        self.base as *mut LogHeader
    }

    fn read_header(&self) -> LogHeader {
        // SAFETY: `base` is valid for `capacity >= LOG_HEADER_SIZE` bytes per
        // the `from_raw` contract; `LogHeader` is plain old data.
        unsafe { std::ptr::read_unaligned(self.header()) }
    }

    fn write_header(&self, hdr: LogHeader) {
        // SAFETY: as in `read_header`.
        unsafe { std::ptr::write_unaligned(self.header(), hdr) };
        persist::persist(self.base, LOG_HEADER_SIZE);
    }

    /// Initializes (or re-initializes) the log area, erasing prior contents.
    pub fn init(&self) {
        let hdr = LogHeader {
            magic: LOG_MAGIC,
            seq_lo: crate::RANGE_DONE.lo,
            seq_hi: crate::RANGE_DONE.hi,
            head_off: LOG_HEADER_SIZE as u64,
            tail_off: u64::MAX,
            capacity: self.capacity as u64,
            num_entries: 0,
            gen: 0,
            _pad: 0,
        };
        self.write_header(hdr);
    }

    /// Returns `true` if the area carries an initialized log.
    pub fn is_initialized(&self) -> bool {
        self.read_header().magic == LOG_MAGIC
    }

    /// Returns the log capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the base address of the log area (for callers that cache the
    /// view as raw parts).
    pub fn base_addr(&self) -> usize {
        self.base as usize
    }

    /// Returns the current log generation.
    pub fn generation(&self) -> u32 {
        self.read_header().gen
    }

    /// Returns the largest payload that is guaranteed to fit in a single
    /// further append, based on the *durable* head (see [`LogWriter::free_bytes`]
    /// for the fast path's volatile view).
    ///
    /// The entry header and payload alignment are reserved up front: a
    /// payload of exactly `free_bytes()` bytes always appends successfully.
    pub fn free_bytes(&self) -> usize {
        let hdr = self.read_header();
        payload_capacity(self.capacity, hdr.head_off as usize)
    }

    /// Returns the number of entries recorded by the last durable header
    /// update (advisory; [`LogWriter`] appends do not maintain it).
    pub fn num_entries(&self) -> u64 {
        self.read_header().num_entries
    }

    /// Returns the current sequence range.
    pub fn seq_range(&self) -> SeqRange {
        let hdr = self.read_header();
        SeqRange {
            lo: hdr.seq_lo,
            hi: hdr.seq_hi,
        }
    }

    /// Atomically publishes a new sequence range and persists it.
    ///
    /// This is the single store that moves a committing transaction between
    /// the stages of Fig. 7. The generation is preserved: entries of the
    /// in-flight transaction stay valid across stage transitions.
    pub fn set_seq_range(&self, range: SeqRange) {
        let mut hdr = self.read_header();
        hdr.seq_lo = range.lo;
        hdr.seq_hi = range.hi;
        self.write_header(hdr);
    }

    /// Appends an entry through the durable-header slow path: the payload
    /// and entry header are persisted (flush + fence), then the log header
    /// advances and is persisted again — two flush+fence rounds, exactly the
    /// pre-`LogWriter` cost. Kept as the baseline path for tests, tools and
    /// benchmarks; transactions use [`LogWriter::append`].
    pub fn append(
        &self,
        addr: u64,
        seq: u32,
        order: ReplayOrder,
        kind: EntryKind,
        data: &[u8],
    ) -> Result<()> {
        let mut hdr = self.read_header();
        if hdr.magic != LOG_MAGIC {
            return Err(PmError::Corruption("append to uninitialized log".into()));
        }
        let entry = LogEntryHeader::new(addr, seq, order, kind, hdr.gen, data);
        let need = entry.stored_size();
        let off = hdr.head_off as usize;
        if off + need > self.capacity {
            return Err(PmError::LogFull {
                need,
                free: self.capacity.saturating_sub(off),
            });
        }
        let torn = self.write_entry(off, &entry, data);
        if torn {
            hdr.head_off = (off + need) as u64;
            hdr.tail_off = off as u64;
            hdr.num_entries += 1;
            self.write_header(hdr);
            return Err(PmError::CrashInjected(failpoint::names::LOG_APPEND_TORN));
        }
        persist::sfence();

        hdr.head_off = (off + need) as u64;
        hdr.tail_off = off as u64;
        hdr.num_entries += 1;
        self.write_header(hdr);
        Ok(())
    }

    /// Writes (and flushes, without fencing) one entry at `off`, honouring
    /// the torn-append failpoint. Returns `true` if the append was torn.
    ///
    /// The caller has bounds-checked `off + entry.stored_size() <= capacity`.
    fn write_entry(&self, off: usize, entry: &LogEntryHeader, data: &[u8]) -> bool {
        // SAFETY: the destination lies inside the log area covered by the
        // `from_raw` contract (caller bounds check); the source is a valid
        // local value / caller-provided slice.
        unsafe {
            let dst = self.base.add(off);
            std::ptr::write_unaligned(dst as *mut LogEntryHeader, *entry);
            std::ptr::copy_nonoverlapping(data.as_ptr(), dst.add(ENTRY_HEADER_SIZE), data.len());
        }
        let torn = failpoint::should_fail(failpoint::names::LOG_APPEND_TORN);
        if torn {
            // Simulate a power failure that persisted the header and part of
            // the payload: corrupt one byte (as if the tail cache line never
            // reached PM) so the validity scan stops at this entry.
            // SAFETY: same destination range as above.
            unsafe {
                if data.is_empty() {
                    // No payload: tear the header's checksum instead.
                    *self.base.add(off) ^= 0xff;
                } else {
                    *self.base.add(off + ENTRY_HEADER_SIZE + data.len() - 1) ^= 0xff;
                }
            }
        }
        // SAFETY: in-range pointer as established above.
        persist::flush(unsafe { self.base.add(off) }, entry.stored_size());
        torn
    }

    /// Advances the generation in `hdr`, invalidating every existing entry
    /// for the scan.
    ///
    /// On the (once per 2^32 transactions) wraparound the entire entry area
    /// is erased: without this, an entry written 2^32 generations ago at a
    /// matching offset would carry the same generation as the new epoch and
    /// could be replayed by recovery (an ABA on the generation counter).
    /// The caller's `write_header` persists (fenced) after this, covering
    /// the erase flush.
    fn bump_gen(&self, hdr: &mut LogHeader) {
        hdr.gen = hdr.gen.wrapping_add(1);
        if hdr.gen == 0 {
            let len = self.capacity - LOG_HEADER_SIZE;
            // SAFETY: `[base + LOG_HEADER_SIZE, base + capacity)` lies inside
            // the area covered by the `from_raw` contract.
            unsafe {
                std::ptr::write_bytes(self.base.add(LOG_HEADER_SIZE), 0, len);
                persist::flush(self.base.add(LOG_HEADER_SIZE), len);
            }
        }
    }

    /// Resets the log: publishes [`crate::RANGE_DONE`], bumps the
    /// generation (invalidating every existing entry for the scan), and
    /// rewinds the advisory head.
    pub fn reset(&self) {
        let mut hdr = self.read_header();
        hdr.seq_lo = crate::RANGE_DONE.lo;
        hdr.seq_hi = crate::RANGE_DONE.hi;
        hdr.head_off = LOG_HEADER_SIZE as u64;
        hdr.tail_off = u64::MAX;
        hdr.num_entries = 0;
        self.bump_gen(&mut hdr);
        self.write_header(hdr);
    }

    /// Overwrites the stored generation without touching entries —
    /// test-only hook for exercising the wraparound path.
    #[cfg(test)]
    fn set_generation_for_test(&self, gen: u32) {
        let mut hdr = self.read_header();
        hdr.gen = gen;
        self.write_header(hdr);
    }

    /// Iterates over every structurally valid entry in append order,
    /// borrowing payloads directly from the log memory (zero-copy).
    ///
    /// Iteration stops at the first slot whose checksum does not verify or
    /// whose generation is not the log's current generation (its length
    /// field cannot be trusted, so later slots are unreachable), mirroring
    /// PMDK's behaviour for torn log tails. Entries are returned regardless
    /// of the current sequence range; callers filter with
    /// [`SeqRange::contains`].
    pub fn iter(&self) -> LogEntries<'_> {
        let hdr = self.read_header();
        let off = if hdr.magic == LOG_MAGIC {
            LOG_HEADER_SIZE
        } else {
            // Uninitialized area: empty iteration.
            self.capacity
        };
        LogEntries {
            log: self,
            off,
            gen: hdr.gen,
        }
    }

    /// Iterates over the entries that are live under the current sequence
    /// range (zero-copy, like [`LogRef::iter`]).
    pub fn live(&self) -> impl Iterator<Item = (LogEntryHeader, &[u8])> {
        let range = self.seq_range();
        self.iter().filter(move |(hdr, _)| range.contains(hdr.seq))
    }
}

/// Borrowing iterator over a log's valid entries; see [`LogRef::iter`].
#[derive(Debug)]
pub struct LogEntries<'a> {
    log: &'a LogRef,
    off: usize,
    gen: u32,
}

impl<'a> Iterator for LogEntries<'a> {
    type Item = (LogEntryHeader, &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.off + ENTRY_HEADER_SIZE > self.log.capacity {
            return None;
        }
        // SAFETY: `off + ENTRY_HEADER_SIZE <= capacity` per the bound above.
        let entry: LogEntryHeader = unsafe {
            std::ptr::read_unaligned(self.log.base.add(self.off) as *const LogEntryHeader)
        };
        let payload_len = entry.size as usize;
        if entry.gen != self.gen || self.off + ENTRY_HEADER_SIZE + payload_len > self.log.capacity {
            return None;
        }
        // SAFETY: bounds checked against `capacity` just above; the slice
        // lives as long as the underlying mapping, which outlives `'a` per
        // the `from_raw` contract.
        let data = unsafe {
            std::slice::from_raw_parts(self.log.base.add(self.off + ENTRY_HEADER_SIZE), payload_len)
        };
        if !entry.verify(data) {
            return None;
        }
        self.off += ENTRY_HEADER_SIZE + align_up(payload_len, ENTRY_ALIGN);
        Some((entry, data))
    }
}

/// Largest payload appendable when the next free byte is at `head`.
fn payload_capacity(capacity: usize, head: usize) -> usize {
    capacity
        .saturating_sub(head)
        .saturating_sub(ENTRY_HEADER_SIZE)
        & !(ENTRY_ALIGN - 1)
}

/// Largest single payload an *empty* log area of `capacity` bytes can hold.
///
/// Callers deciding whether chaining another segment can satisfy an append
/// use this: an entry whose payload exceeds it can never fit in one segment
/// and must be rejected outright instead of growing the chain forever.
pub fn segment_payload_capacity(capacity: usize) -> usize {
    payload_capacity(capacity, LOG_HEADER_SIZE)
}

/// Iterates over every structurally valid entry of a multi-segment log
/// chain in global append order: segment 0's entries first, then segment
/// 1's, and so on — exactly the order a chain-aware writer appended them.
///
/// Each segment's entries are validated against that segment's own
/// generation (the per-segment checksum/generation scan of
/// [`LogRef::iter`]); the *head* segment's sequence range governs which of
/// the yielded entries are live, so callers filter with the head's
/// [`SeqRange`], never a tail's.
pub fn chain_iter(segments: &[LogRef]) -> impl Iterator<Item = (LogEntryHeader, &[u8])> {
    segments.iter().flat_map(|seg| seg.iter())
}

/// The fast, fence-free append path: a chain of [`LogRef`] segments plus a
/// DRAM mirror of the append cursor.
///
/// A `LogWriter` spans one transaction: [`LogWriter::begin`] bumps the log
/// generation and publishes [`crate::RANGE_EXEC`] in a single fenced header
/// write; every [`LogWriter::append`] then costs exactly one unfenced
/// flush; the commit-stage fences (already required by Fig. 7) make the
/// appended entries durable before any sequence-range transition that could
/// replay them.
///
/// # Multi-segment chains
///
/// A transaction that outgrows one log puddle *chains* additional segments
/// ([`LogWriter::extend`], Fig. 5's `chain_index`): when an append reports
/// [`PmError::LogFull`] the caller acquires a fresh log area, extends the
/// writer, and retries. Three properties keep the chain crash-consistent:
///
/// * **Head authority** — the head segment's sequence range governs replay
///   of the *entire* chain. Stage transitions ([`LogWriter::set_seq_range`])
///   and invalidation ([`LogWriter::reset`]) each remain one fenced header
///   write to the head, so commit atomicity is unchanged by chaining.
/// * **Per-segment validity** — each segment keeps its own generation;
///   entries are validated by the usual checksum + generation scan within
///   their segment, and [`chain_iter`] stitches the per-segment valid
///   prefixes in append order.
/// * **Boundary fences** — extending issues a fenced header write on the
///   new tail before any entry lands in it, so every unfenced flush into
///   earlier segments is durable first: a crash can never leave entries in
///   segment *k+1* durable while segment *k*'s are lost (no holes).
#[derive(Debug)]
pub struct LogWriter {
    /// Chain segments in order; `[0]` is the head, the last is active.
    segments: Vec<LogRef>,
    /// Next free byte within the active segment (DRAM only).
    head: usize,
    /// Entries appended since `begin`, across all segments (DRAM only).
    entries: u64,
    /// Generation of the active segment, stamped into appended entries.
    gen: u32,
}

impl LogWriter {
    /// Starts a new transaction on `log`: bumps the generation (orphaning
    /// every existing entry) and publishes [`crate::RANGE_EXEC`], in one
    /// fenced header write.
    pub fn begin(log: LogRef) -> Result<LogWriter> {
        let gen = Self::begin_segment(log)?;
        Ok(LogWriter {
            segments: vec![log],
            head: LOG_HEADER_SIZE,
            entries: 0,
            gen,
        })
    }

    /// One fenced header write that (re)starts `log` for the current
    /// transaction: generation bump + [`crate::RANGE_EXEC`] + rewound
    /// advisory head. Returns the new generation.
    fn begin_segment(log: LogRef) -> Result<u32> {
        let mut hdr = log.read_header();
        if hdr.magic != LOG_MAGIC {
            return Err(PmError::Corruption("begin on uninitialized log".into()));
        }
        log.bump_gen(&mut hdr);
        hdr.seq_lo = crate::RANGE_EXEC.lo;
        hdr.seq_hi = crate::RANGE_EXEC.hi;
        hdr.head_off = LOG_HEADER_SIZE as u64;
        hdr.tail_off = u64::MAX;
        hdr.num_entries = 0;
        log.write_header(hdr);
        Ok(hdr.gen)
    }

    /// Chains `seg` onto the log and makes it the active segment.
    ///
    /// The segment is initialized if it never held a log, then restarted
    /// with a fenced header write (generation bump, so stale entries in
    /// recycled memory cannot alias into this transaction). That fence also
    /// commits every unfenced entry flush issued so far, which is the
    /// Fig. 7 discipline at the chain boundary: by the time the first entry
    /// lands in the new tail, everything before it is durable.
    pub fn extend(&mut self, seg: LogRef) -> Result<()> {
        if !seg.is_initialized() {
            seg.init();
        }
        let gen = Self::begin_segment(seg)?;
        self.segments.push(seg);
        self.head = LOG_HEADER_SIZE;
        self.gen = gen;
        Ok(())
    }

    /// Appends an entry with **one unfenced flush** and no header write.
    ///
    /// The entry is not guaranteed durable until the next fence (the
    /// caller's commit-stage `sfence`, or a fenced header write). A crash
    /// before that fence leaves a durable *prefix* of the appended entries
    /// — the checksum/generation scan finds exactly that prefix.
    ///
    /// When the active segment cannot hold the entry, [`PmError::LogFull`]
    /// is returned; the caller may chain a fresh segment with
    /// [`LogWriter::extend`] and retry.
    pub fn append(
        &mut self,
        addr: u64,
        seq: u32,
        order: ReplayOrder,
        kind: EntryKind,
        data: &[u8],
    ) -> Result<()> {
        if failpoint::should_fail(failpoint::names::LOG_APPEND_CRASH) {
            return Err(PmError::CrashInjected(failpoint::names::LOG_APPEND_CRASH));
        }
        let active = self.active();
        let entry = LogEntryHeader::new(addr, seq, order, kind, self.gen, data);
        let need = entry.stored_size();
        if self.head + need > active.capacity {
            return Err(PmError::LogFull {
                need,
                free: active.capacity.saturating_sub(self.head),
            });
        }
        let torn = active.write_entry(self.head, &entry, data);
        if torn {
            return Err(PmError::CrashInjected(failpoint::names::LOG_APPEND_TORN));
        }
        self.head += need;
        self.entries += 1;
        Ok(())
    }

    /// The head segment's log view (authoritative for the chain's sequence
    /// range).
    pub fn log_ref(&self) -> LogRef {
        self.segments[0]
    }

    /// The segment currently being appended to.
    fn active(&self) -> LogRef {
        *self.segments.last().expect("writer always has a segment")
    }

    /// Every segment of the chain in order (`[0]` is the head).
    pub fn chain(&self) -> &[LogRef] {
        &self.segments
    }

    /// Number of segments in the chain (1 = no chaining happened).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Entries appended since [`LogWriter::begin`], across every segment
    /// (volatile count).
    pub fn num_entries(&self) -> u64 {
        self.entries
    }

    /// Largest payload that still fits in a single further append **without
    /// chaining another segment**, based on the volatile cursor of the
    /// active segment. After [`LogWriter::extend`] this reports the fresh
    /// tail's headroom, not the exhausted previous segment's.
    pub fn free_bytes(&self) -> usize {
        payload_capacity(self.active().capacity, self.head)
    }

    /// Publishes a new sequence range on the **head** segment (fenced; also
    /// makes every entry flushed before it durable). One store moves the
    /// whole chain between the stages of Fig. 7.
    pub fn set_seq_range(&self, range: SeqRange) {
        self.segments[0].set_seq_range(range);
    }

    /// Ends the transaction: resets the head (bumping its generation — the
    /// single fenced write that invalidates the *entire* chain, since the
    /// head's range governs chain replay), then scrubs any tail segments
    /// and drops them from the chain. The caller releases the tail areas'
    /// backing storage afterwards.
    pub fn reset(&mut self) {
        self.segments[0].reset();
        for seg in &self.segments[1..] {
            seg.reset();
        }
        self.segments.truncate(1);
        self.head = LOG_HEADER_SIZE;
        self.entries = 0;
        self.gen = self.segments[0].generation();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RANGE_DONE, RANGE_EXEC, SEQ_REDO, SEQ_UNDO};

    fn make_log(buf: &mut Vec<u8>) -> LogRef {
        // SAFETY: the Vec outlives the LogRef in every test below and is not
        // otherwise accessed while the LogRef is in use.
        unsafe { LogRef::from_raw(buf.as_mut_ptr(), buf.len()) }
    }

    fn collect(log: &LogRef) -> Vec<(LogEntryHeader, Vec<u8>)> {
        log.iter().map(|(h, d)| (h, d.to_vec())).collect()
    }

    #[test]
    fn seq_range_bounds_are_exclusive() {
        let r = SeqRange { lo: 0, hi: 2 };
        assert!(!r.contains(0), "lower bound is exclusive");
        assert!(r.contains(1));
        assert!(!r.contains(2), "upper bound is exclusive");
        assert!(!r.contains(3));
    }

    #[test]
    fn seq_range_adjacent_bounds_are_empty() {
        // (n, n+1) holds no integer strictly between its bounds: logs in
        // this state replay nothing.
        for n in [0u32, 1, 7, u32::MAX - 1] {
            let r = SeqRange { lo: n, hi: n + 1 };
            for seq in [0, n.saturating_sub(1), n, n + 1, n.saturating_add(2)] {
                assert!(!r.contains(seq), "({n}, {}) must not contain {seq}", n + 1);
            }
        }
        // RANGE_DONE is degenerate (lo == hi) and contains nothing either.
        assert_eq!(RANGE_DONE.lo, RANGE_DONE.hi);
        for seq in [0, RANGE_DONE.lo, u32::MAX] {
            assert!(!RANGE_DONE.contains(seq));
        }
    }

    #[test]
    fn seq_range_at_u32_extremes_does_not_wrap() {
        // A range touching the top of the u32 domain: the bounds stay
        // exclusive and nothing wraps around to small sequence numbers.
        let top = SeqRange {
            lo: u32::MAX - 1,
            hi: u32::MAX,
        };
        for seq in [0, 1, u32::MAX - 2, u32::MAX - 1, u32::MAX] {
            assert!(!top.contains(seq));
        }
        let wide = SeqRange {
            lo: 0,
            hi: u32::MAX,
        };
        assert!(wide.contains(1));
        assert!(wide.contains(u32::MAX - 1));
        assert!(!wide.contains(0));
        assert!(!wide.contains(u32::MAX));
    }

    #[test]
    fn init_and_reset_roundtrip() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        assert!(!log.is_initialized());
        log.init();
        assert!(log.is_initialized());
        assert_eq!(log.num_entries(), 0);
        assert_eq!(log.seq_range(), RANGE_DONE);
        log.set_seq_range(RANGE_EXEC);
        assert_eq!(log.seq_range(), RANGE_EXEC);
        let gen_before = log.generation();
        log.reset();
        assert_eq!(log.seq_range(), RANGE_DONE);
        assert_eq!(log.generation(), gen_before + 1);
        assert_eq!(log.iter().count(), 0);
    }

    #[test]
    fn append_and_read_back_entries() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.set_seq_range(RANGE_EXEC);
        log.append(
            0x100,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[1, 2, 3],
        )
        .unwrap();
        log.append(
            0x200,
            SEQ_REDO,
            ReplayOrder::Forward,
            EntryKind::Redo,
            &[9; 40],
        )
        .unwrap();
        let entries = collect(&log);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0.addr, 0x100);
        assert_eq!(entries[0].1, vec![1, 2, 3]);
        assert_eq!(entries[1].0.addr, 0x200);
        assert_eq!(entries[1].1.len(), 40);
        assert_eq!(log.num_entries(), 2);
    }

    #[test]
    fn live_entries_follow_sequence_range() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.set_seq_range(RANGE_EXEC);
        log.append(0x1, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &[1])
            .unwrap();
        log.append(0x2, SEQ_REDO, ReplayOrder::Forward, EntryKind::Redo, &[2])
            .unwrap();
        // Exec stage: only the undo entry is live.
        let live: Vec<u64> = log.live().map(|(e, _)| e.addr).collect();
        assert_eq!(live, vec![0x1]);
        // Redo stage: only the redo entry is live.
        log.set_seq_range(crate::RANGE_REDO);
        let live: Vec<u64> = log.live().map(|(e, _)| e.addr).collect();
        assert_eq!(live, vec![0x2]);
        // Done: nothing is live.
        log.set_seq_range(RANGE_DONE);
        assert_eq!(log.live().count(), 0);
    }

    #[test]
    fn append_fails_with_log_full_when_out_of_space() {
        let mut buf = vec![0u8; 256];
        let log = make_log(&mut buf);
        log.init();
        let data = [0u8; 64];
        let mut appended = 0;
        loop {
            match log.append(0, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &data) {
                Ok(()) => appended += 1,
                Err(PmError::LogFull { need, free }) => {
                    assert!(need > free, "LogFull must report need {need} > free {free}");
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(appended >= 1);
        assert_eq!(log.iter().count(), appended);
    }

    #[test]
    fn free_bytes_reserves_header_and_alignment_up_front() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        loop {
            let free = log.free_bytes();
            // A payload of exactly `free_bytes()` must always fit...
            let data = vec![0xCDu8; free];
            log.append(0x1, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &data)
                .unwrap();
            if log.free_bytes() == 0 {
                break;
            }
        }
        // ...and once it reports 0, even an empty entry may or may not fit,
        // but a 1-byte payload must cleanly report LogFull.
        assert!(matches!(
            log.append(0x1, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &[1]),
            Err(PmError::LogFull { .. })
        ));
    }

    #[test]
    fn torn_append_is_skipped_by_the_scan() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.append(
            0x10,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[1; 16],
        )
        .unwrap();
        failpoint::arm(failpoint::names::LOG_APPEND_TORN, 0);
        let err = log
            .append(
                0x20,
                SEQ_UNDO,
                ReplayOrder::Reverse,
                EntryKind::Undo,
                &[2; 16],
            )
            .unwrap_err();
        assert!(matches!(err, PmError::CrashInjected(_)));
        failpoint::clear_all();
        // The torn entry fails its checksum and truncates iteration.
        let entries = collect(&log);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0.addr, 0x10);
    }

    #[test]
    fn append_to_uninitialized_log_is_rejected() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        assert!(log
            .append(0, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &[1])
            .is_err());
        assert!(LogWriter::begin(log).is_err());
    }

    #[test]
    fn seq_range_contains_is_exclusive() {
        assert!(!RANGE_EXEC.contains(0));
        assert!(RANGE_EXEC.contains(1));
        assert!(!RANGE_EXEC.contains(2));
        assert!(!RANGE_DONE.contains(4));
        assert!(crate::RANGE_REDO.contains(3));
        assert!(!crate::RANGE_REDO.contains(2));
    }

    // ------------------------------------------------------------------
    // LogWriter: the volatile-cursor fast path.
    // ------------------------------------------------------------------

    #[test]
    fn writer_appends_without_header_writes_and_scan_finds_them() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        let mut w = LogWriter::begin(log).unwrap();
        assert_eq!(log.seq_range(), RANGE_EXEC);
        for i in 0..5u64 {
            w.append(
                0x1000 + i,
                SEQ_UNDO,
                ReplayOrder::Reverse,
                EntryKind::Undo,
                &i.to_le_bytes(),
            )
            .unwrap();
        }
        assert_eq!(w.num_entries(), 5);
        // The durable header never advanced...
        assert_eq!(log.num_entries(), 0);
        // ...but the scan sees every appended entry (simulating what
        // recovery would find after a crash right here).
        let addrs: Vec<u64> = log.iter().map(|(h, _)| h.addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x1001, 0x1002, 0x1003, 0x1004]);
    }

    #[test]
    fn crash_after_n_unfenced_appends_recovers_exact_prefix() {
        // The satellite scenario: arm the crash failpoint so the writer
        // dies after exactly N appends; the scan (what recovery replays)
        // must return exactly those N entries.
        for n in [0usize, 1, 3, 7] {
            let mut buf = vec![0u8; 8192];
            let log = make_log(&mut buf);
            log.init();
            let mut w = LogWriter::begin(log).unwrap();
            failpoint::arm(failpoint::names::LOG_APPEND_CRASH, n);
            let mut appended = 0usize;
            let err = loop {
                match w.append(
                    0x2000 + appended as u64,
                    SEQ_UNDO,
                    ReplayOrder::Reverse,
                    EntryKind::Undo,
                    &[appended as u8; 24],
                ) {
                    Ok(()) => appended += 1,
                    Err(e) => break e,
                }
            };
            failpoint::clear_all();
            assert!(matches!(err, PmError::CrashInjected(_)));
            assert_eq!(appended, n);
            let recovered: Vec<u64> = log.iter().map(|(h, _)| h.addr).collect();
            let expected: Vec<u64> = (0..n as u64).map(|i| 0x2000 + i).collect();
            assert_eq!(recovered, expected, "crash after {n} appends");
        }
    }

    #[test]
    fn stale_entries_from_a_previous_generation_are_invisible() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        // Transaction 1 logs three entries and commits (reset).
        let mut w = LogWriter::begin(log).unwrap();
        for i in 0..3u64 {
            w.append(
                0xA0 + i,
                SEQ_UNDO,
                ReplayOrder::Reverse,
                EntryKind::Undo,
                &[7; 8],
            )
            .unwrap();
        }
        w.reset();
        assert_eq!(log.iter().count(), 0, "after reset nothing is valid");
        // Transaction 2 logs ONE entry of the same stored size and "crashes":
        // the old second and third entries still sit beyond it with valid
        // checksums, but their stale generation terminates the scan.
        let mut w = LogWriter::begin(log).unwrap();
        w.append(
            0xB0,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[9; 8],
        )
        .unwrap();
        let visible: Vec<u64> = log.iter().map(|(h, _)| h.addr).collect();
        assert_eq!(visible, vec![0xB0]);
    }

    #[test]
    fn writer_torn_append_truncates_the_scan() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        let mut w = LogWriter::begin(log).unwrap();
        w.append(
            0x1,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[1; 16],
        )
        .unwrap();
        failpoint::arm(failpoint::names::LOG_APPEND_TORN, 0);
        let err = w
            .append(
                0x2,
                SEQ_UNDO,
                ReplayOrder::Reverse,
                EntryKind::Undo,
                &[2; 16],
            )
            .unwrap_err();
        failpoint::clear_all();
        assert!(matches!(err, PmError::CrashInjected(_)));
        let visible: Vec<u64> = log.iter().map(|(h, _)| h.addr).collect();
        assert_eq!(visible, vec![0x1]);
    }

    #[test]
    fn generation_wraparound_erases_the_entry_area() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        // Run a transaction whose entries carry generation u32::MAX.
        log.set_generation_for_test(u32::MAX - 1);
        let mut w = LogWriter::begin(log).unwrap();
        assert_eq!(log.generation(), u32::MAX);
        for i in 0..3u64 {
            w.append(
                0xC0 + i,
                SEQ_UNDO,
                ReplayOrder::Reverse,
                EntryKind::Undo,
                &[5; 8],
            )
            .unwrap();
        }
        assert_eq!(log.iter().count(), 3);
        // The reset wraps the generation to 0 and must physically erase the
        // old entries: otherwise, 2^32 generations later, a same-gen entry
        // at a matching offset would alias into a live transaction (ABA).
        w.reset();
        assert_eq!(log.generation(), 0);
        // Even if a future epoch reaches u32::MAX again, nothing stale can
        // surface — the bytes are gone.
        log.set_generation_for_test(u32::MAX);
        assert_eq!(log.iter().count(), 0);
    }

    // ------------------------------------------------------------------
    // Multi-segment chains.
    // ------------------------------------------------------------------

    /// Appends `data` and on LogFull chains a fresh segment from `spare`
    /// (the logfmt-level analogue of what the transaction layer does).
    fn append_chaining(
        w: &mut LogWriter,
        spare: &mut Vec<Vec<u8>>,
        addr: u64,
        data: &[u8],
    ) -> usize {
        match w.append(addr, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, data) {
            Ok(()) => 0,
            Err(PmError::LogFull { .. }) => {
                let buf = spare.pop().expect("out of spare segments");
                // SAFETY: the Vec lives in the caller's `bufs` holder for the
                // whole test.
                let seg = unsafe { LogRef::from_raw(buf.leak().as_mut_ptr(), 1024) };
                w.extend(seg).unwrap();
                w.append(addr, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, data)
                    .unwrap();
                1
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn chained_appends_span_segments_and_scan_in_order() {
        let mut head_buf = vec![0u8; 1024];
        let head = make_log(&mut head_buf);
        head.init();
        let mut w = LogWriter::begin(head).unwrap();
        let mut spare: Vec<Vec<u8>> = (0..4).map(|_| vec![0u8; 1024]).collect();
        let mut extended = 0;
        for i in 0..40u64 {
            let e = append_chaining(&mut w, &mut spare, 0x9000 + i, &[i as u8; 64]);
            if e == 1 {
                // free_bytes reports the fresh tail's headroom, not the
                // exhausted previous segment's.
                assert!(w.free_bytes() > 0, "fresh tail must report headroom");
            }
            extended += e;
        }
        assert!(extended >= 2, "40 x ~96 B entries must outgrow 1 KiB");
        assert_eq!(w.segment_count(), extended + 1);
        assert_eq!(w.num_entries(), 40);
        // The stitched scan returns every entry in global append order.
        let addrs: Vec<u64> = chain_iter(w.chain()).map(|(h, _)| h.addr).collect();
        assert_eq!(addrs, (0..40u64).map(|i| 0x9000 + i).collect::<Vec<_>>());
    }

    #[test]
    fn chain_reset_invalidates_every_segment_via_the_head() {
        let mut head_buf = vec![0u8; 1024];
        let head = make_log(&mut head_buf);
        head.init();
        let mut w = LogWriter::begin(head).unwrap();
        let mut spare: Vec<Vec<u8>> = (0..2).map(|_| vec![0u8; 1024]).collect();
        for i in 0..20u64 {
            append_chaining(&mut w, &mut spare, i, &[3; 64]);
        }
        let tails: Vec<LogRef> = w.chain()[1..].to_vec();
        assert!(!tails.is_empty());
        w.reset();
        assert_eq!(w.segment_count(), 1);
        assert_eq!(head.seq_range(), RANGE_DONE);
        assert_eq!(head.iter().count(), 0);
        // The scrubbed tails hold nothing valid either.
        for tail in tails {
            assert_eq!(tail.iter().count(), 0);
        }
    }

    #[test]
    fn empty_chain_tail_is_benign_for_the_scan() {
        // The LOG_CHAIN crash window at logfmt level: a tail was chained
        // (initialized + restarted) but the crash hit before its first
        // append. The stitched scan must return exactly the head's entries.
        let mut head_buf = vec![0u8; 4096];
        let head = make_log(&mut head_buf);
        head.init();
        let mut w = LogWriter::begin(head).unwrap();
        for i in 0..3u64 {
            w.append(
                0x70 + i,
                SEQ_UNDO,
                ReplayOrder::Reverse,
                EntryKind::Undo,
                &[1; 8],
            )
            .unwrap();
        }
        let mut tail_buf = vec![0u8; 4096];
        let tail = make_log(&mut tail_buf);
        w.extend(tail).unwrap();
        let addrs: Vec<u64> = chain_iter(w.chain()).map(|(h, _)| h.addr).collect();
        assert_eq!(addrs, vec![0x70, 0x71, 0x72]);
        assert_eq!(tail.seq_range(), RANGE_EXEC);
    }

    #[test]
    fn extend_orphans_stale_entries_in_recycled_segments() {
        // A tail area that previously held a committed chain segment is
        // recycled into a new transaction: its old entries carry a valid
        // checksum for the *previous* generation and must stay invisible.
        let mut tail_buf = vec![0u8; 4096];
        let tail = make_log(&mut tail_buf);
        tail.init();
        let mut w1 = LogWriter::begin(tail).unwrap();
        w1.append(
            0xAA,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[9; 16],
        )
        .unwrap();
        // (no reset — simulates memory handed back without scrubbing)

        let mut head_buf = vec![0u8; 4096];
        let head = make_log(&mut head_buf);
        head.init();
        let mut w = LogWriter::begin(head).unwrap();
        w.extend(tail).unwrap();
        assert_eq!(
            chain_iter(w.chain()).count(),
            0,
            "stale recycled-tail entries must be orphaned by the generation bump"
        );
    }

    #[test]
    fn segment_payload_capacity_matches_an_empty_log() {
        let mut buf = vec![0u8; 2048];
        let log = make_log(&mut buf);
        log.init();
        assert_eq!(segment_payload_capacity(2048), log.free_bytes());
        let w = LogWriter::begin(log).unwrap();
        assert_eq!(segment_payload_capacity(2048), w.free_bytes());
    }

    #[test]
    fn writer_reports_log_full_and_free_bytes_from_volatile_cursor() {
        let mut buf = vec![0u8; 256];
        let log = make_log(&mut buf);
        log.init();
        let mut w = LogWriter::begin(log).unwrap();
        let first_free = w.free_bytes();
        assert!(first_free > 0);
        w.append(0, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &[1; 8])
            .unwrap();
        assert!(w.free_bytes() < first_free);
        // The durable header never moved, so LogRef::free_bytes is stale...
        assert_eq!(log.free_bytes(), first_free);
        // ...and the writer's own view governs the LogFull check.
        let too_big = vec![0u8; w.free_bytes() + 1];
        assert!(matches!(
            w.append(0, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &too_big),
            Err(PmError::LogFull { .. })
        ));
        let just_fits = vec![0u8; w.free_bytes()];
        w.append(
            0,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &just_fits,
        )
        .unwrap();
    }
}
