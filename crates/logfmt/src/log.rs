//! The log: a bounded sequence of log entries plus control metadata
//! (Fig. 6a).

use crate::entry::{EntryKind, LogEntryHeader, ReplayOrder, ENTRY_ALIGN, ENTRY_HEADER_SIZE};
use puddles_pmem::failpoint;
use puddles_pmem::persist;
use puddles_pmem::util::align_up;
use puddles_pmem::{PmError, Result};

/// Magic number identifying an initialized log area.
pub const LOG_MAGIC: u64 = 0x5055_4444_4c4f_4731; // "PUDDLOG1"

/// The sequence range of a log: entries whose sequence number lies strictly
/// between `lo` and `hi` are replayed after a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqRange {
    /// Exclusive lower bound.
    pub lo: u32,
    /// Exclusive upper bound.
    pub hi: u32,
}

impl SeqRange {
    /// Returns `true` if entries with sequence number `seq` are live.
    pub fn contains(&self, seq: u32) -> bool {
        seq > self.lo && seq < self.hi
    }
}

/// On-PM header at the start of a log area.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct LogHeader {
    magic: u64,
    seq_lo: u32,
    seq_hi: u32,
    /// Offset (from the log base) of the next free byte.
    head_off: u64,
    /// Offset of the most recently appended entry, or `u64::MAX` if none.
    tail_off: u64,
    /// Total capacity of the log area in bytes, including this header.
    capacity: u64,
    /// Number of entries appended since the last reset.
    num_entries: u64,
}

/// Size of the log header in bytes.
pub const LOG_HEADER_SIZE: usize = std::mem::size_of::<LogHeader>();

/// A view over a log area in (persistent) memory.
///
/// `LogRef` does not own the memory; it is created over a log puddle's heap
/// by `libtx`, or over a mapped log puddle by the daemon during recovery.
#[derive(Debug, Clone, Copy)]
pub struct LogRef {
    base: *mut u8,
    capacity: usize,
}

// SAFETY: `LogRef` is a typed pointer+length pair; the memory it points to
// is only mutated through `&mut`-free raw-pointer writes that the owners
// (one thread per log, or the daemon during single-threaded recovery)
// serialize externally.
unsafe impl Send for LogRef {}

impl LogRef {
    /// Creates a view over `capacity` bytes of log memory at `base`.
    ///
    /// # Safety
    ///
    /// `base` must be valid for reads and writes of `capacity` bytes for the
    /// lifetime of the returned value, and no other code may concurrently
    /// mutate the range.
    pub unsafe fn from_raw(base: *mut u8, capacity: usize) -> Self {
        assert!(capacity >= LOG_HEADER_SIZE + ENTRY_HEADER_SIZE);
        LogRef { base, capacity }
    }

    fn header(&self) -> *mut LogHeader {
        self.base as *mut LogHeader
    }

    fn read_header(&self) -> LogHeader {
        // SAFETY: `base` is valid for `capacity >= LOG_HEADER_SIZE` bytes per
        // the `from_raw` contract; `LogHeader` is plain old data.
        unsafe { std::ptr::read_unaligned(self.header()) }
    }

    fn write_header(&self, hdr: LogHeader) {
        // SAFETY: as in `read_header`.
        unsafe { std::ptr::write_unaligned(self.header(), hdr) };
        persist::persist(self.base, LOG_HEADER_SIZE);
    }

    /// Initializes (or re-initializes) the log area, erasing prior contents.
    pub fn init(&self) {
        let hdr = LogHeader {
            magic: LOG_MAGIC,
            seq_lo: crate::RANGE_DONE.lo,
            seq_hi: crate::RANGE_DONE.hi,
            head_off: LOG_HEADER_SIZE as u64,
            tail_off: u64::MAX,
            capacity: self.capacity as u64,
            num_entries: 0,
        };
        self.write_header(hdr);
    }

    /// Returns `true` if the area carries an initialized log.
    pub fn is_initialized(&self) -> bool {
        self.read_header().magic == LOG_MAGIC
    }

    /// Returns the log capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the number of payload bytes still available for appends.
    pub fn free_bytes(&self) -> usize {
        let hdr = self.read_header();
        self.capacity.saturating_sub(hdr.head_off as usize)
    }

    /// Returns the number of entries appended since the last reset.
    pub fn num_entries(&self) -> u64 {
        self.read_header().num_entries
    }

    /// Returns the current sequence range.
    pub fn seq_range(&self) -> SeqRange {
        let hdr = self.read_header();
        SeqRange {
            lo: hdr.seq_lo,
            hi: hdr.seq_hi,
        }
    }

    /// Atomically publishes a new sequence range and persists it.
    ///
    /// This is the single store that moves a committing transaction between
    /// the stages of Fig. 7.
    pub fn set_seq_range(&self, range: SeqRange) {
        let mut hdr = self.read_header();
        hdr.seq_lo = range.lo;
        hdr.seq_hi = range.hi;
        self.write_header(hdr);
    }

    /// Appends an entry recording `data` for target address `addr`.
    ///
    /// The entry payload and header are persisted before the log header
    /// advances, so a crash mid-append leaves the log ending at the previous
    /// entry (or at a checksum-invalid torn entry which replay skips).
    pub fn append(
        &self,
        addr: u64,
        seq: u32,
        order: ReplayOrder,
        kind: EntryKind,
        data: &[u8],
    ) -> Result<()> {
        let mut hdr = self.read_header();
        if hdr.magic != LOG_MAGIC {
            return Err(PmError::Corruption("append to uninitialized log".into()));
        }
        let entry = LogEntryHeader::new(addr, seq, order, kind, data);
        let need = entry.stored_size();
        let off = hdr.head_off as usize;
        if off + need > self.capacity {
            return Err(PmError::OutOfRange {
                offset: off,
                len: need,
            });
        }
        // SAFETY: `off + need <= capacity`, so the destination lies inside
        // the log area covered by the `from_raw` contract; the source is a
        // valid local value / caller-provided slice.
        unsafe {
            let dst = self.base.add(off);
            std::ptr::write_unaligned(dst as *mut LogEntryHeader, entry);
            std::ptr::copy_nonoverlapping(data.as_ptr(), dst.add(ENTRY_HEADER_SIZE), data.len());
        }

        let torn = failpoint::should_fail(failpoint::names::LOG_APPEND_TORN);
        if torn {
            // Simulate a power failure that persisted the header and part of
            // the payload: corrupt one payload byte (as if the tail cache
            // line never reached PM), advance the head so replay encounters
            // the entry, and report the crash.
            if !data.is_empty() {
                // SAFETY: same destination range as above.
                unsafe {
                    let dst = self.base.add(off + ENTRY_HEADER_SIZE + data.len() - 1);
                    *dst ^= 0xff;
                }
            }
            persist::persist(
                // SAFETY: in-range pointer arithmetic as above.
                unsafe { self.base.add(off) },
                need,
            );
            hdr.head_off = (off + need) as u64;
            hdr.tail_off = off as u64;
            hdr.num_entries += 1;
            self.write_header(hdr);
            return Err(PmError::CrashInjected(failpoint::names::LOG_APPEND_TORN));
        }

        // SAFETY: in-range pointer as established above.
        persist::flush(unsafe { self.base.add(off) }, need);
        persist::sfence();

        hdr.head_off = (off + need) as u64;
        hdr.tail_off = off as u64;
        hdr.num_entries += 1;
        self.write_header(hdr);
        Ok(())
    }

    /// Resets the log: publishes [`crate::RANGE_DONE`] and rewinds the head.
    pub fn reset(&self) {
        let mut hdr = self.read_header();
        hdr.seq_lo = crate::RANGE_DONE.lo;
        hdr.seq_hi = crate::RANGE_DONE.hi;
        hdr.head_off = LOG_HEADER_SIZE as u64;
        hdr.tail_off = u64::MAX;
        hdr.num_entries = 0;
        self.write_header(hdr);
    }

    /// Reads every structurally valid entry in append order.
    ///
    /// Iteration stops at the first entry whose checksum does not verify
    /// (its length field cannot be trusted, so later entries are
    /// unreachable), mirroring PMDK's behaviour for torn log tails. Entries
    /// are returned regardless of the current sequence range; callers filter
    /// with [`SeqRange::contains`].
    pub fn entries(&self) -> Vec<(LogEntryHeader, Vec<u8>)> {
        let hdr = self.read_header();
        let mut out = Vec::new();
        if hdr.magic != LOG_MAGIC {
            return out;
        }
        let mut off = LOG_HEADER_SIZE;
        let head = (hdr.head_off as usize).min(self.capacity);
        while off + ENTRY_HEADER_SIZE <= head {
            // SAFETY: `off + ENTRY_HEADER_SIZE <= head <= capacity`.
            let entry: LogEntryHeader =
                unsafe { std::ptr::read_unaligned(self.base.add(off) as *const LogEntryHeader) };
            let payload_len = entry.size as usize;
            if off + ENTRY_HEADER_SIZE + payload_len > head {
                break;
            }
            // SAFETY: bounds checked against `head` just above.
            let data = unsafe {
                std::slice::from_raw_parts(self.base.add(off + ENTRY_HEADER_SIZE), payload_len)
            }
            .to_vec();
            if !entry.verify(&data) {
                break;
            }
            out.push((entry, data));
            off += ENTRY_HEADER_SIZE + align_up(payload_len, ENTRY_ALIGN);
        }
        out
    }

    /// Returns the entries that are live under the current sequence range.
    pub fn live_entries(&self) -> Vec<(LogEntryHeader, Vec<u8>)> {
        let range = self.seq_range();
        self.entries()
            .into_iter()
            .filter(|(e, _)| range.contains(e.seq))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RANGE_DONE, RANGE_EXEC, SEQ_REDO, SEQ_UNDO};

    fn make_log(buf: &mut Vec<u8>) -> LogRef {
        // SAFETY: the Vec outlives the LogRef in every test below and is not
        // otherwise accessed while the LogRef is in use.
        unsafe { LogRef::from_raw(buf.as_mut_ptr(), buf.len()) }
    }

    #[test]
    fn seq_range_bounds_are_exclusive() {
        let r = SeqRange { lo: 0, hi: 2 };
        assert!(!r.contains(0), "lower bound is exclusive");
        assert!(r.contains(1));
        assert!(!r.contains(2), "upper bound is exclusive");
        assert!(!r.contains(3));
    }

    #[test]
    fn seq_range_adjacent_bounds_are_empty() {
        // (n, n+1) holds no integer strictly between its bounds: logs in
        // this state replay nothing.
        for n in [0u32, 1, 7, u32::MAX - 1] {
            let r = SeqRange { lo: n, hi: n + 1 };
            for seq in [0, n.saturating_sub(1), n, n + 1, n.saturating_add(2)] {
                assert!(!r.contains(seq), "({n}, {}) must not contain {seq}", n + 1);
            }
        }
        // RANGE_DONE is degenerate (lo == hi) and contains nothing either.
        assert_eq!(RANGE_DONE.lo, RANGE_DONE.hi);
        for seq in [0, RANGE_DONE.lo, u32::MAX] {
            assert!(!RANGE_DONE.contains(seq));
        }
    }

    #[test]
    fn seq_range_at_u32_extremes_does_not_wrap() {
        // A range touching the top of the u32 domain: the bounds stay
        // exclusive and nothing wraps around to small sequence numbers.
        let top = SeqRange {
            lo: u32::MAX - 1,
            hi: u32::MAX,
        };
        for seq in [0, 1, u32::MAX - 2, u32::MAX - 1, u32::MAX] {
            assert!(!top.contains(seq));
        }
        let wide = SeqRange {
            lo: 0,
            hi: u32::MAX,
        };
        assert!(wide.contains(1));
        assert!(wide.contains(u32::MAX - 1));
        assert!(!wide.contains(0));
        assert!(!wide.contains(u32::MAX));
    }

    #[test]
    fn init_and_reset_roundtrip() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        assert!(!log.is_initialized());
        log.init();
        assert!(log.is_initialized());
        assert_eq!(log.num_entries(), 0);
        assert_eq!(log.seq_range(), RANGE_DONE);
        log.set_seq_range(RANGE_EXEC);
        assert_eq!(log.seq_range(), RANGE_EXEC);
        log.reset();
        assert_eq!(log.seq_range(), RANGE_DONE);
        assert!(log.entries().is_empty());
    }

    #[test]
    fn append_and_read_back_entries() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.set_seq_range(RANGE_EXEC);
        log.append(
            0x100,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[1, 2, 3],
        )
        .unwrap();
        log.append(
            0x200,
            SEQ_REDO,
            ReplayOrder::Forward,
            EntryKind::Redo,
            &[9; 40],
        )
        .unwrap();
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0.addr, 0x100);
        assert_eq!(entries[0].1, vec![1, 2, 3]);
        assert_eq!(entries[1].0.addr, 0x200);
        assert_eq!(entries[1].1.len(), 40);
        assert_eq!(log.num_entries(), 2);
    }

    #[test]
    fn live_entries_follow_sequence_range() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.set_seq_range(RANGE_EXEC);
        log.append(0x1, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &[1])
            .unwrap();
        log.append(0x2, SEQ_REDO, ReplayOrder::Forward, EntryKind::Redo, &[2])
            .unwrap();
        // Exec stage: only the undo entry is live.
        let live: Vec<u64> = log.live_entries().iter().map(|(e, _)| e.addr).collect();
        assert_eq!(live, vec![0x1]);
        // Redo stage: only the redo entry is live.
        log.set_seq_range(crate::RANGE_REDO);
        let live: Vec<u64> = log.live_entries().iter().map(|(e, _)| e.addr).collect();
        assert_eq!(live, vec![0x2]);
        // Done: nothing is live.
        log.set_seq_range(RANGE_DONE);
        assert!(log.live_entries().is_empty());
    }

    #[test]
    fn append_fails_when_full() {
        let mut buf = vec![0u8; 256];
        let log = make_log(&mut buf);
        log.init();
        let data = [0u8; 64];
        let mut appended = 0;
        loop {
            match log.append(0, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &data) {
                Ok(()) => appended += 1,
                Err(PmError::OutOfRange { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(appended >= 1);
        assert_eq!(log.entries().len(), appended);
    }

    #[test]
    fn torn_append_is_skipped_by_entries() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.append(
            0x10,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[1; 16],
        )
        .unwrap();
        failpoint::arm(failpoint::names::LOG_APPEND_TORN, 0);
        let err = log
            .append(
                0x20,
                SEQ_UNDO,
                ReplayOrder::Reverse,
                EntryKind::Undo,
                &[2; 16],
            )
            .unwrap_err();
        assert!(matches!(err, PmError::CrashInjected(_)));
        failpoint::clear_all();
        // The torn entry fails its checksum and truncates iteration.
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0.addr, 0x10);
    }

    #[test]
    fn append_to_uninitialized_log_is_rejected() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        assert!(log
            .append(0, SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo, &[1])
            .is_err());
    }

    #[test]
    fn seq_range_contains_is_exclusive() {
        assert!(!RANGE_EXEC.contains(0));
        assert!(RANGE_EXEC.contains(1));
        assert!(!RANGE_EXEC.contains(2));
        assert!(!RANGE_DONE.contains(4));
        assert!(crate::RANGE_REDO.contains(3));
        assert!(!crate::RANGE_REDO.contains(2));
    }
}
