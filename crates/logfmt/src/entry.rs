//! Log-entry layout (Fig. 6b).

use puddles_pmem::checksum::fnv1a64;

/// How valid entries of this record are applied during replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ReplayOrder {
    /// Apply in append order (redo logging).
    Forward = 0,
    /// Apply in reverse append order (undo logging).
    Reverse = 1,
}

impl ReplayOrder {
    /// Decodes a stored order byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ReplayOrder::Forward),
            1 => Some(ReplayOrder::Reverse),
            _ => None,
        }
    }
}

/// The kind of a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EntryKind {
    /// Old value of a location; replayed to roll a transaction back.
    Undo = 0,
    /// New value of a location; replayed to roll a transaction forward.
    Redo = 1,
    /// Targets volatile memory; applied on abort during normal execution,
    /// ignored by post-crash recovery (§4.1).
    Volatile = 2,
}

impl EntryKind {
    /// Decodes a stored kind byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(EntryKind::Undo),
            1 => Some(EntryKind::Redo),
            2 => Some(EntryKind::Volatile),
            _ => None,
        }
    }
}

/// On-PM header preceding each log entry's payload.
///
/// The checksum covers every other header field plus the payload, so a torn
/// append (header or data only partially persisted) is detected and the
/// entry skipped, exactly like PMDK's log checksums.
///
/// The `gen` field ties the entry to one *generation* of its log: the log
/// header stores the current generation and bumps it whenever the log is
/// (re)started, so the validity scan never mistakes a leftover entry from an
/// earlier transaction for the continuation of the current one. This is what
/// lets the log keep its append cursor in DRAM — validity is decided
/// entirely by `checksum ∧ gen`, not by a durable head pointer.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct LogEntryHeader {
    /// FNV-1a 64 over (addr, size, seq, order, kind, flags, gen) and the
    /// payload.
    pub checksum: u64,
    /// Target virtual address in the global puddle space (or a volatile
    /// address for [`EntryKind::Volatile`] entries).
    pub addr: u64,
    /// Payload size in bytes.
    pub size: u32,
    /// Sequence number compared against the log's sequence range.
    pub seq: u32,
    /// Replay order ([`ReplayOrder`] as u8).
    pub order: u8,
    /// Entry kind ([`EntryKind`] as u8).
    pub kind: u8,
    /// Reserved flag bits (unused, must be zero).
    pub flags: u16,
    /// Generation of the log this entry belongs to.
    pub gen: u32,
}

/// Size of the entry header in bytes.
pub const ENTRY_HEADER_SIZE: usize = std::mem::size_of::<LogEntryHeader>();

/// Payload alignment inside the log.
pub const ENTRY_ALIGN: usize = 8;

impl LogEntryHeader {
    /// Builds a header (checksum included) for an entry of log generation
    /// `gen` targeting `addr` with payload `data`.
    pub fn new(
        addr: u64,
        seq: u32,
        order: ReplayOrder,
        kind: EntryKind,
        gen: u32,
        data: &[u8],
    ) -> Self {
        let mut hdr = LogEntryHeader {
            checksum: 0,
            addr,
            size: data.len() as u32,
            seq,
            order: order as u8,
            kind: kind as u8,
            flags: 0,
            gen,
        };
        hdr.checksum = hdr.compute_checksum(data);
        hdr
    }

    /// Computes the checksum this header should carry for payload `data`.
    pub fn compute_checksum(&self, data: &[u8]) -> u64 {
        let mut buf = [0u8; 8 * 3];
        buf[0..8].copy_from_slice(&self.addr.to_le_bytes());
        buf[8..12].copy_from_slice(&self.size.to_le_bytes());
        buf[12..16].copy_from_slice(&self.seq.to_le_bytes());
        buf[16] = self.order;
        buf[17] = self.kind;
        buf[18..20].copy_from_slice(&self.flags.to_le_bytes());
        buf[20..24].copy_from_slice(&self.gen.to_le_bytes());
        let seed = fnv1a64(&buf[..24]);
        puddles_pmem::checksum::fnv1a64_with_seed(seed, data)
    }

    /// Returns `true` if the stored checksum matches the header and payload.
    pub fn verify(&self, data: &[u8]) -> bool {
        data.len() == self.size as usize && self.checksum == self.compute_checksum(data)
    }

    /// Returns the decoded replay order, if the stored byte is valid.
    pub fn replay_order(&self) -> Option<ReplayOrder> {
        ReplayOrder::from_u8(self.order)
    }

    /// Returns the decoded entry kind, if the stored byte is valid.
    pub fn entry_kind(&self) -> Option<EntryKind> {
        EntryKind::from_u8(self.kind)
    }

    /// Total bytes the entry occupies in the log (header + padded payload).
    pub fn stored_size(&self) -> usize {
        ENTRY_HEADER_SIZE + puddles_pmem::util::align_up(self.size as usize, ENTRY_ALIGN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_32_bytes() {
        assert_eq!(ENTRY_HEADER_SIZE, 32);
    }

    #[test]
    fn checksum_roundtrip_verifies() {
        let data = [1u8, 2, 3, 4, 5];
        let hdr = LogEntryHeader::new(0x1234, 1, ReplayOrder::Reverse, EntryKind::Undo, 7, &data);
        assert!(hdr.verify(&data));
        assert_eq!(hdr.size, 5);
        assert_eq!(hdr.gen, 7);
        assert_eq!(hdr.entry_kind(), Some(EntryKind::Undo));
        assert_eq!(hdr.replay_order(), Some(ReplayOrder::Reverse));
    }

    #[test]
    fn corrupting_payload_or_header_fails_verification() {
        let data = [7u8; 64];
        let hdr = LogEntryHeader::new(0xabcd, 3, ReplayOrder::Forward, EntryKind::Redo, 1, &data);
        let mut bad = data;
        bad[10] ^= 0xff;
        assert!(!hdr.verify(&bad));

        let mut bad_hdr = hdr;
        bad_hdr.addr ^= 0x1;
        assert!(!bad_hdr.verify(&data));

        let mut bad_seq = hdr;
        bad_seq.seq = 1;
        assert!(!bad_seq.verify(&data));

        // A rewritten generation invalidates the checksum: a stale entry
        // cannot be forged into the current generation.
        let mut bad_gen = hdr;
        bad_gen.gen += 1;
        assert!(!bad_gen.verify(&data));

        // Wrong length payload also fails.
        assert!(!hdr.verify(&data[..63]));
    }

    #[test]
    fn stored_size_is_padded() {
        let hdr = LogEntryHeader::new(0, 1, ReplayOrder::Forward, EntryKind::Redo, 0, &[1, 2, 3]);
        assert_eq!(hdr.stored_size(), 32 + 8);
        let hdr = LogEntryHeader::new(0, 1, ReplayOrder::Forward, EntryKind::Redo, 0, &[0; 8]);
        assert_eq!(hdr.stored_size(), 32 + 8);
        let hdr = LogEntryHeader::new(0, 1, ReplayOrder::Forward, EntryKind::Redo, 0, &[]);
        assert_eq!(hdr.stored_size(), 32);
    }

    #[test]
    fn kind_and_order_decoding_rejects_garbage() {
        assert_eq!(EntryKind::from_u8(3), None);
        assert_eq!(ReplayOrder::from_u8(2), None);
        assert_eq!(EntryKind::from_u8(2), Some(EntryKind::Volatile));
    }
}
