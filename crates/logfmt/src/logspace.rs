//! The log space: a directory of the log puddles a client has registered
//! (Fig. 5).
//!
//! A client registers one *log space* puddle with the daemon
//! (`RegLogSpace`); afterwards it can create, grow and drop logs without
//! talking to the daemon again — it simply records each log puddle in the
//! log space. After a crash the daemon walks the log space to find every
//! log that may need replay.

use puddles_pmem::persist;
use puddles_pmem::{PmError, Result};

/// Magic number identifying an initialized log space.
pub const LOGSPACE_MAGIC: u64 = 0x5055_4444_4c53_5031; // "PUDDLSP1"

/// On-PM header of a log space area.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct LogSpaceHeader {
    magic: u64,
    capacity_entries: u64,
    num_slots: u64,
}

/// One slot in the log space, identifying a log stored in a log puddle.
///
/// A log that outgrows its puddle is continued in another puddle by linking
/// a second slot with the same `log_id` and the next `chain_index` (Fig. 5
/// shows a log spanning Puddle 0 and Puddle 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct LogSpaceEntry {
    /// Low 64 bits of the log puddle's UUID.
    pub puddle_uuid_lo: u64,
    /// High 64 bits of the log puddle's UUID.
    pub puddle_uuid_hi: u64,
    /// Identifier shared by all slots of one (possibly multi-puddle) log.
    pub log_id: u64,
    /// Position of this puddle within the log's chain (0 = first).
    pub chain_index: u32,
    /// 1 if the slot is live, 0 if free.
    pub in_use: u32,
}

const HEADER_SIZE: usize = std::mem::size_of::<LogSpaceHeader>();
const SLOT_SIZE: usize = std::mem::size_of::<LogSpaceEntry>();

/// A view over a log-space area in (persistent) memory.
#[derive(Debug, Clone, Copy)]
pub struct LogSpaceRef {
    base: *mut u8,
    capacity: usize,
}

// SAFETY: pointer+length view; mutation is serialized by the owning client
// (log spaces are per-client) or by the single-threaded daemon recovery.
unsafe impl Send for LogSpaceRef {}

impl LogSpaceRef {
    /// Creates a view over `capacity` bytes of log-space memory at `base`.
    ///
    /// # Safety
    ///
    /// `base` must be valid for reads and writes of `capacity` bytes for the
    /// lifetime of the returned value, and no other code may concurrently
    /// mutate the range.
    pub unsafe fn from_raw(base: *mut u8, capacity: usize) -> Self {
        assert!(capacity >= HEADER_SIZE + SLOT_SIZE);
        LogSpaceRef { base, capacity }
    }

    fn read_header(&self) -> LogSpaceHeader {
        // SAFETY: `base` is valid for at least HEADER_SIZE bytes.
        unsafe { std::ptr::read_unaligned(self.base as *const LogSpaceHeader) }
    }

    fn write_header(&self, hdr: LogSpaceHeader) {
        // SAFETY: as in `read_header`.
        unsafe { std::ptr::write_unaligned(self.base as *mut LogSpaceHeader, hdr) };
        persist::persist(self.base, HEADER_SIZE);
    }

    fn slot_ptr(&self, index: usize) -> *mut LogSpaceEntry {
        // SAFETY: callers only pass indices below `capacity_entries`, which
        // `init` sized to fit within `capacity`.
        unsafe { self.base.add(HEADER_SIZE + index * SLOT_SIZE) as *mut LogSpaceEntry }
    }

    /// Initializes the log space, clearing all slots.
    pub fn init(&self) {
        let slots = (self.capacity - HEADER_SIZE) / SLOT_SIZE;
        let hdr = LogSpaceHeader {
            magic: LOGSPACE_MAGIC,
            capacity_entries: slots as u64,
            num_slots: 0,
        };
        for i in 0..slots {
            // SAFETY: slot `i` < `slots` fits inside the area by construction.
            unsafe {
                std::ptr::write_unaligned(
                    self.slot_ptr(i),
                    LogSpaceEntry {
                        puddle_uuid_lo: 0,
                        puddle_uuid_hi: 0,
                        log_id: 0,
                        chain_index: 0,
                        in_use: 0,
                    },
                )
            };
        }
        persist::persist(self.base, HEADER_SIZE + slots * SLOT_SIZE);
        self.write_header(hdr);
    }

    /// Returns `true` if the area carries an initialized log space.
    pub fn is_initialized(&self) -> bool {
        self.read_header().magic == LOGSPACE_MAGIC
    }

    /// Returns the maximum number of slots.
    pub fn capacity_entries(&self) -> usize {
        self.read_header().capacity_entries as usize
    }

    /// Registers a log puddle under `log_id` at chain position `chain_index`.
    pub fn register(&self, puddle_uuid: u128, log_id: u64, chain_index: u32) -> Result<()> {
        let hdr = self.read_header();
        if hdr.magic != LOGSPACE_MAGIC {
            return Err(PmError::Corruption("uninitialized log space".into()));
        }
        let slots = hdr.capacity_entries as usize;
        for i in 0..slots {
            // SAFETY: `i < slots` as sized by `init`.
            let slot = unsafe { std::ptr::read_unaligned(self.slot_ptr(i)) };
            if slot.in_use == 0 {
                let entry = LogSpaceEntry {
                    puddle_uuid_lo: puddle_uuid as u64,
                    puddle_uuid_hi: (puddle_uuid >> 64) as u64,
                    log_id,
                    chain_index,
                    in_use: 1,
                };
                // SAFETY: same slot as read above.
                unsafe { std::ptr::write_unaligned(self.slot_ptr(i), entry) };
                persist::persist(self.slot_ptr(i) as *const u8, SLOT_SIZE);
                let mut new_hdr = hdr;
                new_hdr.num_slots += 1;
                self.write_header(new_hdr);
                return Ok(());
            }
        }
        Err(PmError::OutOfRange {
            offset: slots,
            len: 1,
        })
    }

    /// Removes every slot referring to `puddle_uuid`.
    pub fn unregister(&self, puddle_uuid: u128) -> usize {
        let hdr = self.read_header();
        let slots = hdr.capacity_entries as usize;
        let mut removed = 0;
        for i in 0..slots {
            // SAFETY: `i < slots`.
            let mut slot = unsafe { std::ptr::read_unaligned(self.slot_ptr(i)) };
            let uuid = (slot.puddle_uuid_hi as u128) << 64 | slot.puddle_uuid_lo as u128;
            if slot.in_use == 1 && uuid == puddle_uuid {
                slot.in_use = 0;
                // SAFETY: same slot.
                unsafe { std::ptr::write_unaligned(self.slot_ptr(i), slot) };
                persist::persist(self.slot_ptr(i) as *const u8, SLOT_SIZE);
                removed += 1;
            }
        }
        if removed > 0 {
            let mut new_hdr = hdr;
            new_hdr.num_slots = new_hdr.num_slots.saturating_sub(removed as u64);
            self.write_header(new_hdr);
        }
        removed
    }

    /// Returns every live slot, sorted by (`log_id`, `chain_index`).
    pub fn live_slots(&self) -> Vec<LogSpaceEntry> {
        let hdr = self.read_header();
        if hdr.magic != LOGSPACE_MAGIC {
            return Vec::new();
        }
        let slots = hdr.capacity_entries as usize;
        let mut out = Vec::new();
        for i in 0..slots {
            // SAFETY: `i < slots`.
            let slot = unsafe { std::ptr::read_unaligned(self.slot_ptr(i)) };
            if slot.in_use == 1 {
                out.push(slot);
            }
        }
        out.sort_by_key(|s| (s.log_id, s.chain_index));
        out
    }

    /// Returns the UUIDs of all registered log puddles (deduplicated, in
    /// registration-slot order).
    pub fn log_puddles(&self) -> Vec<u128> {
        let mut seen = Vec::new();
        for slot in self.live_slots() {
            let uuid = (slot.puddle_uuid_hi as u128) << 64 | slot.puddle_uuid_lo as u128;
            if !seen.contains(&uuid) {
                seen.push(uuid);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make(buf: &mut Vec<u8>) -> LogSpaceRef {
        // SAFETY: the Vec outlives the view in each test.
        unsafe { LogSpaceRef::from_raw(buf.as_mut_ptr(), buf.len()) }
    }

    #[test]
    fn init_register_unregister() {
        let mut buf = vec![0u8; 4096];
        let ls = make(&mut buf);
        assert!(!ls.is_initialized());
        ls.init();
        assert!(ls.is_initialized());
        assert!(ls.capacity_entries() > 10);

        ls.register(0xAAAA, 1, 0).unwrap();
        ls.register(0xBBBB, 1, 1).unwrap();
        ls.register(0xCCCC, 2, 0).unwrap();
        assert_eq!(ls.live_slots().len(), 3);
        assert_eq!(ls.log_puddles(), vec![0xAAAA, 0xBBBB, 0xCCCC]);

        assert_eq!(ls.unregister(0xBBBB), 1);
        assert_eq!(ls.log_puddles(), vec![0xAAAA, 0xCCCC]);
        assert_eq!(ls.unregister(0xBBBB), 0);
    }

    #[test]
    fn slots_are_ordered_by_log_and_chain() {
        let mut buf = vec![0u8; 4096];
        let ls = make(&mut buf);
        ls.init();
        ls.register(3, 7, 1).unwrap();
        ls.register(1, 7, 0).unwrap();
        ls.register(2, 5, 0).unwrap();
        let slots = ls.live_slots();
        assert_eq!(
            slots
                .iter()
                .map(|s| (s.log_id, s.chain_index, s.puddle_uuid_lo))
                .collect::<Vec<_>>(),
            vec![(5, 0, 2), (7, 0, 1), (7, 1, 3)]
        );
    }

    #[test]
    fn register_fails_when_full() {
        // Room for the header plus exactly 2 slots.
        let mut buf = vec![0u8; HEADER_SIZE + 2 * SLOT_SIZE];
        let ls = make(&mut buf);
        ls.init();
        ls.register(1, 1, 0).unwrap();
        ls.register(2, 2, 0).unwrap();
        assert!(ls.register(3, 3, 0).is_err());
        // Freeing a slot makes room again.
        ls.unregister(1);
        ls.register(3, 3, 0).unwrap();
    }

    #[test]
    fn uninitialized_space_reports_no_slots() {
        let mut buf = vec![0u8; 1024];
        let ls = make(&mut buf);
        assert!(ls.live_slots().is_empty());
        assert!(ls.register(1, 1, 0).is_err());
    }
}
