//! Puddles crash-consistency log format (paper §4.1, Figures 5–7).
//!
//! The Puddles system makes recovery *application independent* by making the
//! crash-consistency log a structured, self-describing format that a
//! privileged daemon can replay safely after a crash without the writer
//! application being present. The format has three layers:
//!
//! * **Log space** ([`logspace`]) — a directory puddle listing every log
//!   puddle a client has registered; the daemon only ever replays logs that
//!   were registered through this directory.
//! * **Log** ([`log::LogRef`]) — a sequence of log entries plus metadata: a
//!   *sequence range* controlling which entries are live, head/tail
//!   pointers, and capacity. A log that outgrows its puddle is continued in
//!   further puddles ([`log::LogWriter::extend`], Fig. 5's `chain_index`);
//!   the head segment's range governs replay of the whole chain
//!   ([`replay::replay_chain`]).
//! * **Log entry** ([`entry::LogEntryHeader`]) — checksum, target virtual
//!   address, size, *sequence number*, replay *order* (forward for redo,
//!   reverse for undo) and *kind* (undo / redo / volatile), followed by the
//!   payload bytes.
//!
//! Entry validity is `checksum matches ∧ gen == log.gen ∧ seq ∈
//! (range.lo, range.hi)` (exclusive bounds), which lets commit atomically
//! switch between the hybrid-logging stages of Fig. 7 by publishing a
//! single new range: `(0,2)` replays only undo entries, `(2,4)` only redo
//! entries, `(4,4)` replays nothing. Because validity never depends on a
//! durable head pointer, the append cursor lives in DRAM
//! ([`log::LogWriter`]) and a steady-state append costs one unfenced
//! flush.
//!
//! [`replay`] implements the stage-aware replay used both by the library at
//! commit time (applying redo entries) and by `puddled` during recovery.

pub mod entry;
pub mod log;
pub mod logspace;
pub mod replay;

pub use entry::{EntryKind, LogEntryHeader, ReplayOrder};
pub use log::{chain_iter, segment_payload_capacity, LogEntries, LogRef, LogWriter, SeqRange};
pub use logspace::{LogSpaceEntry, LogSpaceRef};
pub use replay::{
    replay_chain, replay_log, BufferTarget, DirectMemoryTarget, ReplayStats, ReplayTarget,
};

/// Sequence number assigned to undo entries in the hybrid-logging scheme.
pub const SEQ_UNDO: u32 = 1;
/// Sequence number assigned to redo entries in the hybrid-logging scheme.
pub const SEQ_REDO: u32 = 3;

/// Sequence range while the transaction body executes (replay undo only).
pub const RANGE_EXEC: SeqRange = SeqRange { lo: 0, hi: 2 };
/// Sequence range after undo locations are flushed (replay redo only).
pub const RANGE_REDO: SeqRange = SeqRange { lo: 2, hi: 4 };
/// Sequence range once the transaction is complete (replay nothing).
pub const RANGE_DONE: SeqRange = SeqRange { lo: 4, hi: 4 };
