//! Stage-aware log replay, shared by commit (roll forward) and recovery.
//!
//! The key property of the Puddles log format is that replay is *uniform*:
//! regardless of whether an entry is an undo or a redo entry, applying it
//! means copying its payload to its target address (§4.1 "Recovery"). What
//! differs is *which* entries are live (the sequence range) and in *what
//! order* they are applied (reverse for undo, forward for redo).
//!
//! Replay writes through a [`ReplayTarget`], which is how the daemon
//! enforces access control during recovery: a [`DirectMemoryTarget`]
//! restricted to the address ranges the crashed client could write refuses
//! entries that fall outside them.

use crate::entry::{EntryKind, LogEntryHeader, ReplayOrder};
use crate::log::LogRef;
use puddles_pmem::persist;

/// Destination for replayed log entries.
pub trait ReplayTarget {
    /// Returns `true` if the target accepts writes to `[addr, addr + len)`.
    fn allows(&self, addr: u64, len: usize) -> bool;

    /// Copies `data` to `addr`.
    ///
    /// Only called when [`ReplayTarget::allows`] returned `true`.
    fn apply(&mut self, addr: u64, data: &[u8]);
}

/// Replays into raw memory: the daemon (and commit) use this once the
/// relevant puddles are mapped at the addresses the entries refer to.
#[derive(Debug, Default)]
pub struct DirectMemoryTarget {
    /// Allowed `[start, start + len)` ranges; an empty list allows nothing,
    /// `None` allows everything (library-internal commit path).
    allowed: Option<Vec<(u64, u64)>>,
}

impl DirectMemoryTarget {
    /// Creates a target that accepts any address (the in-process commit
    /// path, where the transaction only ever logged addresses it owns).
    pub fn unrestricted() -> Self {
        DirectMemoryTarget { allowed: None }
    }

    /// Creates a target restricted to the given `(start, len)` ranges.
    pub fn restricted(ranges: Vec<(u64, u64)>) -> Self {
        DirectMemoryTarget {
            allowed: Some(ranges),
        }
    }
}

impl ReplayTarget for DirectMemoryTarget {
    fn allows(&self, addr: u64, len: usize) -> bool {
        match &self.allowed {
            None => true,
            Some(ranges) => ranges.iter().any(|&(start, rlen)| {
                addr >= start && addr.saturating_add(len as u64) <= start.saturating_add(rlen)
            }),
        }
    }

    fn apply(&mut self, addr: u64, data: &[u8]) {
        // SAFETY: `allows` confirmed the range lies inside a region the
        // caller declared mapped and writable (or the caller opted into the
        // unrestricted mode, taking responsibility for every logged address).
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), addr as *mut u8, data.len());
        }
        persist::flush(addr as *const u8, data.len());
    }
}

/// Replays into an owned byte buffer standing in for a mapped region;
/// used by unit and property tests.
#[derive(Debug)]
pub struct BufferTarget {
    base: u64,
    buf: Vec<u8>,
}

impl BufferTarget {
    /// Creates a buffer of `len` bytes modelling memory at `[base, base+len)`.
    pub fn new(base: u64, len: usize) -> Self {
        BufferTarget {
            base,
            buf: vec![0; len],
        }
    }

    /// Creates the target from existing contents.
    pub fn from_bytes(base: u64, buf: Vec<u8>) -> Self {
        BufferTarget { base, buf }
    }

    /// Returns the backing bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Returns a mutable view of the backing bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Reads `len` bytes at absolute address `addr`.
    pub fn read(&self, addr: u64, len: usize) -> &[u8] {
        let off = (addr - self.base) as usize;
        &self.buf[off..off + len]
    }

    /// Writes `data` at absolute address `addr` (test setup helper).
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let off = (addr - self.base) as usize;
        self.buf[off..off + data.len()].copy_from_slice(data);
    }
}

impl ReplayTarget for BufferTarget {
    fn allows(&self, addr: u64, len: usize) -> bool {
        addr >= self.base && addr + len as u64 <= self.base + self.buf.len() as u64
    }

    fn apply(&mut self, addr: u64, data: &[u8]) {
        let off = (addr - self.base) as usize;
        self.buf[off..off + data.len()].copy_from_slice(data);
    }
}

/// Outcome counters of a replay pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Entries copied to their target address.
    pub applied: usize,
    /// Entries whose sequence number was outside the live range.
    pub skipped_sequence: usize,
    /// Volatile entries ignored because this is post-crash recovery.
    pub skipped_volatile: usize,
    /// Entries denied by the target's access control.
    pub denied: usize,
    /// Entries with undecodable kind/order bytes.
    pub malformed: usize,
}

/// Replays the live entries of `log` into `target`.
///
/// * `apply_volatile` — the in-process abort path applies volatile entries
///   (to keep DRAM state consistent with PM); post-crash recovery passes
///   `false` because the volatile state no longer exists.
///
/// Reverse-order (undo) entries are applied last-logged-first, then
/// forward-order (redo) entries first-logged-first; under the staged
/// sequence ranges of Fig. 7 only one of the two groups is live at a time.
pub fn replay_log<T: ReplayTarget>(
    log: &LogRef,
    target: &mut T,
    apply_volatile: bool,
) -> ReplayStats {
    replay_chain(std::slice::from_ref(log), target, apply_volatile)
}

/// Replays a multi-segment log chain (`segments[0]` is the head) into
/// `target`, exactly like [`replay_log`] over one logical log.
///
/// The **head** segment's sequence range decides which entries are live
/// throughout the chain; each segment contributes its own checksummed,
/// generation-valid prefix ([`crate::log::chain_iter`]). Reverse-order
/// (undo) entries are applied last-logged-first *globally* — the last
/// segment's entries roll back before the first's — and forward-order
/// (redo) entries first-logged-first, so multi-segment replay is
/// indistinguishable from replaying the same entries out of one large log.
pub fn replay_chain<T: ReplayTarget>(
    segments: &[LogRef],
    target: &mut T,
    apply_volatile: bool,
) -> ReplayStats {
    let Some(head) = segments.first() else {
        return ReplayStats::default();
    };
    let range = head.seq_range();
    let mut stats = ReplayStats::default();

    // Group borrowed views of the live entries: payloads stay in the log
    // memory (zero-copy) and are copied exactly once, into their targets.
    let mut reverse_group: Vec<(LogEntryHeader, &[u8])> = Vec::new();
    let mut forward_group: Vec<(LogEntryHeader, &[u8])> = Vec::new();

    for (hdr, data) in crate::log::chain_iter(segments) {
        if !range.contains(hdr.seq) {
            stats.skipped_sequence += 1;
            continue;
        }
        let (kind, order) = match (hdr.entry_kind(), hdr.replay_order()) {
            (Some(k), Some(o)) => (k, o),
            _ => {
                stats.malformed += 1;
                continue;
            }
        };
        if kind == EntryKind::Volatile && !apply_volatile {
            stats.skipped_volatile += 1;
            continue;
        }
        match order {
            ReplayOrder::Reverse => reverse_group.push((hdr, data)),
            ReplayOrder::Forward => forward_group.push((hdr, data)),
        }
    }

    for (hdr, data) in reverse_group.into_iter().rev() {
        if target.allows(hdr.addr, data.len()) {
            target.apply(hdr.addr, data);
            stats.applied += 1;
        } else {
            stats.denied += 1;
        }
    }
    for (hdr, data) in forward_group {
        if target.allows(hdr.addr, data.len()) {
            target.apply(hdr.addr, data);
            stats.applied += 1;
        } else {
            stats.denied += 1;
        }
    }
    persist::sfence();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RANGE_DONE, RANGE_EXEC, RANGE_REDO, SEQ_REDO, SEQ_UNDO};

    fn make_log(buf: &mut Vec<u8>) -> LogRef {
        // SAFETY: the Vec outlives the LogRef in every test.
        unsafe { LogRef::from_raw(buf.as_mut_ptr(), buf.len()) }
    }

    #[test]
    fn undo_entries_roll_back_in_reverse_order() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.set_seq_range(RANGE_EXEC);
        // Two undo records for the same address: the first holds the oldest
        // value; reverse replay must leave that oldest value in place.
        log.append(
            0x1000,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[0xAA; 8],
        )
        .unwrap();
        log.append(
            0x1000,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[0xBB; 8],
        )
        .unwrap();

        let mut target = BufferTarget::new(0x1000, 64);
        target.write(0x1000, &[0xFF; 8]);
        let stats = replay_log(&log, &mut target, false);
        assert_eq!(stats.applied, 2);
        assert_eq!(target.read(0x1000, 8), &[0xAA; 8]);
    }

    #[test]
    fn redo_entries_roll_forward_in_order() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.set_seq_range(RANGE_REDO);
        log.append(
            0x2000,
            SEQ_REDO,
            ReplayOrder::Forward,
            EntryKind::Redo,
            &[1; 4],
        )
        .unwrap();
        log.append(
            0x2000,
            SEQ_REDO,
            ReplayOrder::Forward,
            EntryKind::Redo,
            &[2; 4],
        )
        .unwrap();
        let mut target = BufferTarget::new(0x2000, 64);
        let stats = replay_log(&log, &mut target, false);
        assert_eq!(stats.applied, 2);
        // The later redo record wins under forward replay.
        assert_eq!(target.read(0x2000, 4), &[2; 4]);
    }

    #[test]
    fn sequence_range_selects_the_stage() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.append(
            0x100,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[0xAA],
        )
        .unwrap();
        log.append(
            0x101,
            SEQ_REDO,
            ReplayOrder::Forward,
            EntryKind::Redo,
            &[0xBB],
        )
        .unwrap();

        // Stage 1 (exec / undo): only the undo entry is applied.
        log.set_seq_range(RANGE_EXEC);
        let mut t1 = BufferTarget::new(0x100, 16);
        let s1 = replay_log(&log, &mut t1, false);
        assert_eq!((s1.applied, s1.skipped_sequence), (1, 1));
        assert_eq!(t1.read(0x100, 1), &[0xAA]);
        assert_eq!(t1.read(0x101, 1), &[0x00]);

        // Stage 2 (redo): only the redo entry is applied.
        log.set_seq_range(RANGE_REDO);
        let mut t2 = BufferTarget::new(0x100, 16);
        let s2 = replay_log(&log, &mut t2, false);
        assert_eq!((s2.applied, s2.skipped_sequence), (1, 1));
        assert_eq!(t2.read(0x101, 1), &[0xBB]);

        // Stage 3 (done): nothing is applied.
        log.set_seq_range(RANGE_DONE);
        let mut t3 = BufferTarget::new(0x100, 16);
        let s3 = replay_log(&log, &mut t3, false);
        assert_eq!(s3.applied, 0);
        assert_eq!(s3.skipped_sequence, 2);
    }

    #[test]
    fn volatile_entries_are_ignored_by_recovery_but_applied_on_abort() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.set_seq_range(RANGE_EXEC);
        log.append(
            0x300,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Volatile,
            &[7; 4],
        )
        .unwrap();
        let mut recovery = BufferTarget::new(0x300, 16);
        let s = replay_log(&log, &mut recovery, false);
        assert_eq!(s.applied, 0);
        assert_eq!(s.skipped_volatile, 1);

        let mut abort = BufferTarget::new(0x300, 16);
        let s = replay_log(&log, &mut abort, true);
        assert_eq!(s.applied, 1);
        assert_eq!(abort.read(0x300, 4), &[7; 4]);
    }

    #[test]
    fn access_control_denies_out_of_range_entries() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.set_seq_range(RANGE_EXEC);
        log.append(
            0x500,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[1; 8],
        )
        .unwrap();
        log.append(
            0x9000,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[2; 8],
        )
        .unwrap();
        let mut target = BufferTarget::new(0x500, 64);
        let stats = replay_log(&log, &mut target, false);
        assert_eq!(stats.applied, 1);
        assert_eq!(stats.denied, 1);
        assert_eq!(target.read(0x500, 8), &[1; 8]);
    }

    // ------------------------------------------------------------------
    // Chained replay.
    // ------------------------------------------------------------------

    #[test]
    fn replay_chain_of_one_segment_equals_replay_log() {
        let mut buf = vec![0u8; 4096];
        let log = make_log(&mut buf);
        log.init();
        log.set_seq_range(RANGE_EXEC);
        log.append(
            0x100,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[5; 8],
        )
        .unwrap();
        let mut a = BufferTarget::new(0x100, 64);
        let mut b = BufferTarget::new(0x100, 64);
        let sa = replay_log(&log, &mut a, false);
        let sb = replay_chain(std::slice::from_ref(&log), &mut b, false);
        assert_eq!(sa, sb);
        assert_eq!(a.bytes(), b.bytes());
        assert_eq!(replay_chain(&[], &mut a, false), ReplayStats::default());
    }

    /// One logical entry of the randomized chained-replay property.
    #[derive(Clone, Copy)]
    struct PropEntry {
        off: usize,
        len: usize,
        redo: bool,
        fill: u8,
    }

    fn build_prop_entries(raw: &[(usize, usize, u8)], region: usize) -> Vec<PropEntry> {
        raw.iter()
            .map(|&(off, len, tag)| {
                let len = len.min(region - 1);
                PropEntry {
                    off: off % (region - len),
                    len,
                    redo: tag % 2 == 1,
                    fill: tag,
                }
            })
            .collect()
    }

    fn append_prop_entry(w: &mut crate::log::LogWriter, base: u64, e: &PropEntry) -> bool {
        let data: Vec<u8> = (0..e.len).map(|i| e.fill ^ (i as u8)).collect();
        let (seq, order, kind) = if e.redo {
            (SEQ_REDO, ReplayOrder::Forward, EntryKind::Redo)
        } else {
            (SEQ_UNDO, ReplayOrder::Reverse, EntryKind::Undo)
        };
        match w.append(base + e.off as u64, seq, order, kind, &data) {
            Ok(()) => true,
            Err(puddles_pmem::PmError::LogFull { .. }) => false,
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        #[test]
        fn chained_replay_equals_single_log_replay(
            raw in proptest::collection::vec((0usize..4096, 0usize..200, 0u8..255), 16..48)
        ) {
            const REGION: usize = 4096;
            const BASE: u64 = 0x10_0000;
            let entries = build_prop_entries(&raw, REGION);

            // (a) One large log holding every entry.
            let mut big_buf = vec![0u8; 64 * 1024];
            let big = make_log(&mut big_buf);
            big.init();
            let mut bw = crate::log::LogWriter::begin(big).unwrap();
            for e in &entries {
                proptest::prop_assert!(append_prop_entry(&mut bw, BASE, e));
            }

            // (b) The same entries split across small chained segments.
            let mut head_buf = vec![0u8; 512];
            let head = make_log(&mut head_buf);
            head.init();
            let mut cw = crate::log::LogWriter::begin(head).unwrap();
            for e in &entries {
                if !append_prop_entry(&mut cw, BASE, e) {
                    let buf: &'static mut [u8] = vec![0u8; 512].leak();
                    // SAFETY: the leaked buffer lives for the process.
                    let seg = unsafe { LogRef::from_raw(buf.as_mut_ptr(), buf.len()) };
                    cw.extend(seg).unwrap();
                    proptest::prop_assert!(append_prop_entry(&mut cw, BASE, e));
                }
            }
            proptest::prop_assert!(
                cw.segment_count() >= 2,
                "workload must actually straddle segments (got {})",
                cw.segment_count()
            );

            // Replaying the chain must produce memory identical to replaying
            // the single log, in every stage.
            let init: Vec<u8> = (0..REGION).map(|i| (i * 31 % 251) as u8).collect();
            for range in [RANGE_EXEC, RANGE_REDO] {
                bw.set_seq_range(range);
                cw.set_seq_range(range);
                let mut single = BufferTarget::from_bytes(BASE, init.clone());
                let mut chained = BufferTarget::from_bytes(BASE, init.clone());
                let ss = replay_log(&big, &mut single, false);
                let sc = replay_chain(cw.chain(), &mut chained, false);
                proptest::prop_assert_eq!(ss, sc);
                proptest::prop_assert_eq!(single.bytes(), chained.bytes());
            }
        }
    }

    #[test]
    fn direct_memory_target_respects_ranges() {
        let mut data = vec![0u8; 128];
        let base = data.as_mut_ptr() as u64;
        let mut allowed = DirectMemoryTarget::restricted(vec![(base, 64)]);
        assert!(allowed.allows(base, 64));
        assert!(!allowed.allows(base + 32, 64));
        allowed.apply(base, &[9; 16]);
        assert_eq!(&data[..16], &[9; 16]);

        let none = DirectMemoryTarget::restricted(vec![]);
        assert!(!none.allows(base, 1));
        let all = DirectMemoryTarget::unrestricted();
        assert!(all.allows(base, 128));
    }
}
