//! The multithreaded-scaling workload of Fig. 12: an embarrassingly parallel
//! computation over a persistent floating-point array, each thread updating
//! its slice inside its own (thread-local) transactions.

use puddles::{impl_pm_type, PmPtr, Pool, PoolOptions, PuddleClient};

/// The persistent array root.
#[repr(C)]
pub struct EulerRoot {
    /// Pointer to the first element of the f64 array.
    data: PmPtr<f64>,
    /// Number of elements.
    len: u64,
}
impl_pm_type!(EulerRoot, "datastructures::euler::EulerRoot", [data => ()]);

/// A persistent f64 array processed in parallel transactions.
pub struct EulerArray {
    client: PuddleClient,
    pool: Pool,
}

/// How many elements one transaction processes.
pub const CHUNK: usize = 256;

impl EulerArray {
    /// Creates the array with `len` elements initialized to their index.
    pub fn create(client: &PuddleClient, name: &str, len: usize) -> puddles::Result<Self> {
        let bytes = len * std::mem::size_of::<f64>();
        let options = PoolOptions::default().puddle_size((bytes as u64 + (1 << 20)).max(8 << 20));
        let pool = client.open_or_create_pool(name, options)?;
        if pool.root::<EulerRoot>().is_none() {
            pool.tx(|tx| {
                let data = pool.alloc_raw(tx, bytes, 0)?;
                // SAFETY: fresh allocation of `bytes` writable bytes.
                unsafe {
                    let slice = std::slice::from_raw_parts_mut(data as *mut f64, len);
                    for (i, v) in slice.iter_mut().enumerate() {
                        *v = i as f64;
                    }
                }
                pool.create_root(
                    tx,
                    EulerRoot {
                        data: PmPtr::from_addr(data as u64),
                        len: len as u64,
                    },
                )?;
                Ok(())
            })?;
        }
        Ok(EulerArray {
            client: client.clone(),
            pool,
        })
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.pool
            .root::<EulerRoot>()
            .and_then(|r| self.pool.deref(r).ok().map(|r| r.len as usize))
            .unwrap_or(0)
    }

    /// Returns `true` if the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A clone of the underlying client (each worker thread needs one so its
    /// transactions get their own log puddle).
    pub fn client(&self) -> PuddleClient {
        self.client.clone()
    }

    fn data(&self) -> *mut f64 {
        let root = self.pool.root::<EulerRoot>().expect("created");
        self.pool.deref(root).expect("mapped").data.addr() as *mut f64
    }

    /// Processes `[start, end)`: each CHUNK of elements is updated in one
    /// transaction with the "Euler identity" computation of Fig. 12
    /// (`x ← |e^{iπ·x} + 1|`, evaluated via cos/sin).
    pub fn process_range(&self, start: usize, end: usize) -> puddles::Result<()> {
        let data = self.data();
        let mut chunk_start = start;
        while chunk_start < end {
            let chunk_end = (chunk_start + CHUNK).min(end);
            self.client.tx(|tx| {
                for i in chunk_start..chunk_end {
                    // SAFETY: `i < len`, inside the mapped array.
                    unsafe {
                        let slot = data.add(i);
                        tx.add(&*slot)?;
                        let x = *slot;
                        let re = (std::f64::consts::PI * x).cos() + 1.0;
                        let im = (std::f64::consts::PI * x).sin();
                        *slot = (re * re + im * im).sqrt();
                    }
                }
                Ok(())
            })?;
            chunk_start = chunk_end;
        }
        Ok(())
    }

    /// Runs the whole array with `threads` worker threads, each processing
    /// 1/n-th of the array (the Fig. 12 setup). Returns the elapsed time.
    pub fn run_parallel(self: &std::sync::Arc<Self>, threads: usize) -> std::time::Duration {
        let len = self.len();
        let per = len.div_ceil(threads);
        let start_time = std::time::Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let this = std::sync::Arc::clone(self);
                std::thread::spawn(move || {
                    let start = t * per;
                    let end = ((t + 1) * per).min(len);
                    if start < end {
                        this.process_range(start, end).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        start_time.elapsed()
    }

    /// Reads element `i` (test helper).
    pub fn get(&self, i: usize) -> f64 {
        // SAFETY: `i < len` is the caller's responsibility in tests.
        unsafe { *self.data().add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puddled::{Daemon, DaemonConfig};

    #[test]
    fn parallel_processing_touches_every_element() {
        let tmp = tempfile::tempdir().unwrap();
        let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let array = std::sync::Arc::new(EulerArray::create(&client, "euler", 4096).unwrap());
        assert_eq!(array.len(), 4096);
        assert_eq!(array.get(3), 3.0);
        array.run_parallel(4);
        // |e^{iπx}+1| for integer x is 2 for even x and 0 for odd x.
        for i in 0..4096 {
            let expected = if i % 2 == 0 { 2.0 } else { 0.0 };
            assert!((array.get(i) - expected).abs() < 1e-9, "element {i}");
        }
    }

    #[test]
    fn single_threaded_and_multithreaded_agree() {
        let tmp = tempfile::tempdir().unwrap();
        let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let a = std::sync::Arc::new(EulerArray::create(&client, "a", 1024).unwrap());
        let b = std::sync::Arc::new(EulerArray::create(&client, "b", 1024).unwrap());
        a.run_parallel(1);
        b.run_parallel(8);
        for i in 0..1024 {
            assert!((a.get(i) - b.get(i)).abs() < 1e-12);
        }
    }
}
