//! Order-8 B-trees (Fig. 10): 8-byte keys and values, implemented for
//! Puddles (native pointers) and PMDK-sim (fat pointers).
//!
//! Inserts use proactive splitting on the way down; deletion removes the key
//! (replacing internal keys with their predecessor) but does not rebalance
//! underfull nodes — a documented simplification that does not change the
//! pointer-chasing behaviour Fig. 10 measures.

use puddles::{impl_pm_type, PmPtr, Pool, PuddleClient};

/// Maximum keys per node (order 8 ⇒ 8 children).
pub const MAX_KEYS: usize = 7;

// ---------------------------------------------------------------------
// Puddles implementation.
// ---------------------------------------------------------------------

/// A B-tree node stored in a puddle.
#[repr(C)]
pub struct PBNode {
    nkeys: u64,
    leaf: u64,
    keys: [u64; MAX_KEYS],
    values: [u64; MAX_KEYS],
    children: [PmPtr<PBNode>; MAX_KEYS + 1],
}
impl_pm_type!(
    PBNode,
    "datastructures::btree::PBNode",
    [children => PBNode]
);

/// The B-tree root object.
#[repr(C)]
pub struct PBTreeRoot {
    root: PmPtr<PBNode>,
    count: u64,
}
impl_pm_type!(
    PBTreeRoot,
    "datastructures::btree::PBTreeRoot",
    [root => PBNode]
);

fn empty_pnode(leaf: bool) -> PBNode {
    PBNode {
        nkeys: 0,
        leaf: leaf as u64,
        keys: [0; MAX_KEYS],
        values: [0; MAX_KEYS],
        children: [PmPtr::null(); MAX_KEYS + 1],
    }
}

/// Order-8 B-tree over the Puddles library.
pub struct PuddlesBTree {
    client: PuddleClient,
    pool: Pool,
}

impl PuddlesBTree {
    /// Creates (or opens) the tree in pool `name`.
    pub fn new(client: &PuddleClient, name: &str) -> puddles::Result<Self> {
        let pool = client.open_or_create_pool(name, Default::default())?;
        if pool.root::<PBTreeRoot>().is_none() {
            pool.tx(|tx| {
                pool.create_root(
                    tx,
                    PBTreeRoot {
                        root: PmPtr::null(),
                        count: 0,
                    },
                )
            })?;
        }
        Ok(PuddlesBTree {
            client: client.clone(),
            pool,
        })
    }

    fn meta(&self) -> PmPtr<PBTreeRoot> {
        self.pool.root().expect("root created in new()")
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.pool.deref(self.meta()).map(|m| m.count).unwrap_or(0)
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, returning its value (native-pointer descent: one load
    /// per level, no translation).
    pub fn search(&self, key: u64) -> Option<u64> {
        let meta = self.pool.deref(self.meta()).ok()?;
        let mut cur = meta.root;
        while !cur.is_null() {
            // SAFETY: tree nodes stay mapped while the pool is open.
            let node = unsafe { cur.as_ref() };
            let n = node.nkeys as usize;
            let mut i = 0;
            while i < n && key > node.keys[i] {
                i += 1;
            }
            if i < n && node.keys[i] == key {
                return Some(node.values[i]);
            }
            if node.leaf != 0 {
                return None;
            }
            cur = node.children[i];
        }
        None
    }

    /// Inserts (or updates) `key` → `value`.
    pub fn insert(&self, key: u64, value: u64) -> puddles::Result<()> {
        let meta_ptr = self.meta();
        self.client.tx(|tx| {
            let meta = self.pool.deref_mut(meta_ptr)?;
            if meta.root.is_null() {
                let mut node = empty_pnode(true);
                node.nkeys = 1;
                node.keys[0] = key;
                node.values[0] = value;
                let node = self.pool.alloc_value(tx, node)?;
                tx.set(&mut meta.root, node)?;
                let count = meta.count + 1;
                tx.set(&mut meta.count, count)?;
                return Ok(());
            }
            // Split a full root first.
            // SAFETY: root is a live node.
            if unsafe { meta.root.as_ref() }.nkeys as usize == MAX_KEYS {
                let mut new_root = empty_pnode(false);
                new_root.children[0] = meta.root;
                let new_root = self.pool.alloc_value(tx, new_root)?;
                self.split_child(tx, new_root, 0)?;
                tx.set(&mut meta.root, new_root)?;
            }
            let inserted = self.insert_nonfull(tx, meta.root, key, value)?;
            if inserted {
                let meta = self.pool.deref_mut(meta_ptr)?;
                let count = meta.count + 1;
                tx.set(&mut meta.count, count)?;
            }
            Ok(())
        })
    }

    fn split_child(
        &self,
        tx: &mut puddles::Transaction<'_>,
        parent_ptr: PmPtr<PBNode>,
        index: usize,
    ) -> puddles::Result<()> {
        // SAFETY: parent and child are live nodes in writable puddles.
        let parent = unsafe { parent_ptr.as_mut() };
        let child_ptr = parent.children[index];
        let child = unsafe { child_ptr.as_mut() };
        tx.add(parent)?;
        tx.add(child)?;

        let mid = MAX_KEYS / 2; // 3
        let mut right = empty_pnode(child.leaf != 0);
        let right_keys = MAX_KEYS - mid - 1; // 3
        for i in 0..right_keys {
            right.keys[i] = child.keys[mid + 1 + i];
            right.values[i] = child.values[mid + 1 + i];
        }
        if child.leaf == 0 {
            for i in 0..=right_keys {
                right.children[i] = child.children[mid + 1 + i];
            }
        }
        right.nkeys = right_keys as u64;
        let right_ptr = self.pool.alloc_value(tx, right)?;

        // Shift the parent's keys/children to make room.
        let pn = parent.nkeys as usize;
        let mut i = pn;
        while i > index {
            parent.keys[i] = parent.keys[i - 1];
            parent.values[i] = parent.values[i - 1];
            parent.children[i + 1] = parent.children[i];
            i -= 1;
        }
        parent.keys[index] = child.keys[mid];
        parent.values[index] = child.values[mid];
        parent.children[index + 1] = right_ptr;
        parent.nkeys += 1;
        child.nkeys = mid as u64;
        Ok(())
    }

    fn insert_nonfull(
        &self,
        tx: &mut puddles::Transaction<'_>,
        node_ptr: PmPtr<PBNode>,
        key: u64,
        value: u64,
    ) -> puddles::Result<bool> {
        // SAFETY: live node in a writable puddle.
        let node = unsafe { node_ptr.as_mut() };
        let n = node.nkeys as usize;
        let mut i = 0;
        while i < n && key > node.keys[i] {
            i += 1;
        }
        if i < n && node.keys[i] == key {
            tx.add(node)?;
            node.values[i] = value;
            return Ok(false);
        }
        if node.leaf != 0 {
            tx.add(node)?;
            let mut j = n;
            while j > i {
                node.keys[j] = node.keys[j - 1];
                node.values[j] = node.values[j - 1];
                j -= 1;
            }
            node.keys[i] = key;
            node.values[i] = value;
            node.nkeys += 1;
            return Ok(true);
        }
        // SAFETY: child is a live node.
        if unsafe { node.children[i].as_ref() }.nkeys as usize == MAX_KEYS {
            self.split_child(tx, node_ptr, i)?;
            if key > node.keys[i] {
                i += 1;
            } else if key == node.keys[i] {
                tx.add(node)?;
                node.values[i] = value;
                return Ok(false);
            }
        }
        self.insert_nonfull(tx, node.children[i], key, value)
    }

    /// Deletes `key`, returning `true` if it was present.
    pub fn delete(&self, key: u64) -> puddles::Result<bool> {
        let meta_ptr = self.meta();
        self.client.tx(|tx| {
            let meta = self.pool.deref_mut(meta_ptr)?;
            if meta.root.is_null() {
                return Ok(false);
            }
            let removed = self.delete_from(tx, meta.root, key)?;
            if removed {
                let count = meta.count - 1;
                tx.set(&mut meta.count, count)?;
            }
            Ok(removed)
        })
    }

    fn delete_from(
        &self,
        tx: &mut puddles::Transaction<'_>,
        node_ptr: PmPtr<PBNode>,
        key: u64,
    ) -> puddles::Result<bool> {
        // SAFETY: live node.
        let node = unsafe { node_ptr.as_mut() };
        let n = node.nkeys as usize;
        let mut i = 0;
        while i < n && key > node.keys[i] {
            i += 1;
        }
        if i < n && node.keys[i] == key {
            tx.add(node)?;
            if node.leaf != 0 {
                for j in i..n - 1 {
                    node.keys[j] = node.keys[j + 1];
                    node.values[j] = node.values[j + 1];
                }
                node.nkeys -= 1;
                return Ok(true);
            }
            // Replace with the predecessor (rightmost key of the left
            // subtree), then remove that key from its leaf. If the left
            // subtree is empty (possible because deletion does not
            // rebalance), drop the key and the empty subtree instead.
            match self.max_of(node.children[i]) {
                Some((pred_key, pred_value)) => {
                    node.keys[i] = pred_key;
                    node.values[i] = pred_value;
                    self.delete_from(tx, node.children[i], pred_key)?;
                }
                None => {
                    for j in i..n - 1 {
                        node.keys[j] = node.keys[j + 1];
                        node.values[j] = node.values[j + 1];
                    }
                    for j in i..n {
                        node.children[j] = node.children[j + 1];
                    }
                    node.nkeys -= 1;
                }
            }
            return Ok(true);
        }
        if node.leaf != 0 {
            return Ok(false);
        }
        self.delete_from(tx, node.children[i], key)
    }

    fn max_of(&self, node_ptr: PmPtr<PBNode>) -> Option<(u64, u64)> {
        if node_ptr.is_null() {
            return None;
        }
        // SAFETY: live node.
        let node = unsafe { node_ptr.as_ref() };
        let n = node.nkeys as usize;
        if node.leaf != 0 {
            return (n > 0).then(|| (node.keys[n - 1], node.values[n - 1]));
        }
        if let Some(found) = self.max_of(node.children[n]) {
            return Some(found);
        }
        if n > 0 {
            return Some((node.keys[n - 1], node.values[n - 1]));
        }
        self.max_of(node.children[0])
    }
}

// ---------------------------------------------------------------------
// PMDK-sim implementation.
// ---------------------------------------------------------------------

/// A B-tree node stored in a PMDK pool (fat-pointer children).
#[repr(C)]
pub struct MBNode {
    nkeys: u64,
    leaf: u64,
    keys: [u64; MAX_KEYS],
    values: [u64; MAX_KEYS],
    children: [pmdk_sim::Toid<MBNode>; MAX_KEYS + 1],
}

/// The PMDK B-tree root object.
#[repr(C)]
pub struct MBTreeRoot {
    root: pmdk_sim::Toid<MBNode>,
    count: u64,
}

fn empty_mnode(leaf: bool) -> MBNode {
    MBNode {
        nkeys: 0,
        leaf: leaf as u64,
        keys: [0; MAX_KEYS],
        values: [0; MAX_KEYS],
        children: [pmdk_sim::Toid::null(); MAX_KEYS + 1],
    }
}

/// Order-8 B-tree over the PMDK baseline.
pub struct PmdkBTree {
    pool: pmdk_sim::PmdkPool,
}

impl PmdkBTree {
    /// Creates the tree in a new pool file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>, pool_size: usize) -> pmdk_sim::Result<Self> {
        let pool = pmdk_sim::PmdkPool::create(path, pool_size)?;
        pool.tx(|tx| {
            let root = tx.alloc(MBTreeRoot {
                root: pmdk_sim::Toid::null(),
                count: 0,
            })?;
            tx.set_root(root)?;
            Ok(())
        })?;
        Ok(PmdkBTree { pool })
    }

    fn meta(&self) -> pmdk_sim::Toid<MBTreeRoot> {
        self.pool.root()
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        // SAFETY: the root object is live while the pool is open.
        unsafe { self.meta().as_ref() }.count
    }

    /// Returns `true` if the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`: every level pays one fat-pointer translation.
    pub fn search(&self, key: u64) -> Option<u64> {
        // SAFETY: root object is live.
        let meta = unsafe { self.meta().as_ref() };
        let mut cur = meta.root;
        while !cur.is_null() {
            // SAFETY: nodes are live while the pool is open.
            let node = unsafe { cur.as_ref() };
            let n = node.nkeys as usize;
            let mut i = 0;
            while i < n && key > node.keys[i] {
                i += 1;
            }
            if i < n && node.keys[i] == key {
                return Some(node.values[i]);
            }
            if node.leaf != 0 {
                return None;
            }
            cur = node.children[i];
        }
        None
    }

    /// Inserts (or updates) `key` → `value`.
    pub fn insert(&self, key: u64, value: u64) -> pmdk_sim::Result<()> {
        let meta_ptr = self.meta();
        self.pool.tx(|tx| {
            // SAFETY: root object is live.
            let meta = unsafe { meta_ptr.as_mut() };
            if meta.root.is_null() {
                let mut node = empty_mnode(true);
                node.nkeys = 1;
                node.keys[0] = key;
                node.values[0] = value;
                let node = tx.alloc(node)?;
                tx.add(meta)?;
                meta.root = node;
                meta.count += 1;
                return Ok(());
            }
            // SAFETY: root node is live.
            if unsafe { meta.root.as_ref() }.nkeys as usize == MAX_KEYS {
                let mut new_root = empty_mnode(false);
                new_root.children[0] = meta.root;
                let new_root = tx.alloc(new_root)?;
                Self::split_child(tx, new_root, 0)?;
                tx.add(meta)?;
                meta.root = new_root;
            }
            let inserted = Self::insert_nonfull(tx, meta.root, key, value)?;
            if inserted {
                tx.add(meta)?;
                meta.count += 1;
            }
            Ok(())
        })
    }

    fn split_child(
        tx: &mut pmdk_sim::PmdkTx<'_>,
        parent_ptr: pmdk_sim::Toid<MBNode>,
        index: usize,
    ) -> pmdk_sim::Result<()> {
        // SAFETY: parent and child are live nodes.
        let parent = unsafe { parent_ptr.as_mut() };
        let child_ptr = parent.children[index];
        let child = unsafe { child_ptr.as_mut() };
        tx.add(parent)?;
        tx.add(child)?;

        let mid = MAX_KEYS / 2;
        let mut right = empty_mnode(child.leaf != 0);
        let right_keys = MAX_KEYS - mid - 1;
        for i in 0..right_keys {
            right.keys[i] = child.keys[mid + 1 + i];
            right.values[i] = child.values[mid + 1 + i];
        }
        if child.leaf == 0 {
            for i in 0..=right_keys {
                right.children[i] = child.children[mid + 1 + i];
            }
        }
        right.nkeys = right_keys as u64;
        let right_ptr = tx.alloc(right)?;

        let pn = parent.nkeys as usize;
        let mut i = pn;
        while i > index {
            parent.keys[i] = parent.keys[i - 1];
            parent.values[i] = parent.values[i - 1];
            parent.children[i + 1] = parent.children[i];
            i -= 1;
        }
        parent.keys[index] = child.keys[mid];
        parent.values[index] = child.values[mid];
        parent.children[index + 1] = right_ptr;
        parent.nkeys += 1;
        child.nkeys = mid as u64;
        Ok(())
    }

    fn insert_nonfull(
        tx: &mut pmdk_sim::PmdkTx<'_>,
        node_ptr: pmdk_sim::Toid<MBNode>,
        key: u64,
        value: u64,
    ) -> pmdk_sim::Result<bool> {
        // SAFETY: live node.
        let node = unsafe { node_ptr.as_mut() };
        let n = node.nkeys as usize;
        let mut i = 0;
        while i < n && key > node.keys[i] {
            i += 1;
        }
        if i < n && node.keys[i] == key {
            tx.add(node)?;
            node.values[i] = value;
            return Ok(false);
        }
        if node.leaf != 0 {
            tx.add(node)?;
            let mut j = n;
            while j > i {
                node.keys[j] = node.keys[j - 1];
                node.values[j] = node.values[j - 1];
                j -= 1;
            }
            node.keys[i] = key;
            node.values[i] = value;
            node.nkeys += 1;
            return Ok(true);
        }
        // SAFETY: live child node.
        if unsafe { node.children[i].as_ref() }.nkeys as usize == MAX_KEYS {
            Self::split_child(tx, node_ptr, i)?;
            if key > node.keys[i] {
                i += 1;
            } else if key == node.keys[i] {
                tx.add(node)?;
                node.values[i] = value;
                return Ok(false);
            }
        }
        Self::insert_nonfull(tx, node.children[i], key, value)
    }

    /// Deletes `key`, returning `true` if it was present.
    pub fn delete(&self, key: u64) -> pmdk_sim::Result<bool> {
        let meta_ptr = self.meta();
        self.pool.tx(|tx| {
            // SAFETY: root object is live.
            let meta = unsafe { meta_ptr.as_mut() };
            if meta.root.is_null() {
                return Ok(false);
            }
            let removed = Self::delete_from(tx, meta.root, key)?;
            if removed {
                tx.add(meta)?;
                meta.count -= 1;
            }
            Ok(removed)
        })
    }

    fn delete_from(
        tx: &mut pmdk_sim::PmdkTx<'_>,
        node_ptr: pmdk_sim::Toid<MBNode>,
        key: u64,
    ) -> pmdk_sim::Result<bool> {
        // SAFETY: live node.
        let node = unsafe { node_ptr.as_mut() };
        let n = node.nkeys as usize;
        let mut i = 0;
        while i < n && key > node.keys[i] {
            i += 1;
        }
        if i < n && node.keys[i] == key {
            tx.add(node)?;
            if node.leaf != 0 {
                for j in i..n - 1 {
                    node.keys[j] = node.keys[j + 1];
                    node.values[j] = node.values[j + 1];
                }
                node.nkeys -= 1;
                return Ok(true);
            }
            match Self::max_of(node.children[i]) {
                Some((pred_key, pred_value)) => {
                    node.keys[i] = pred_key;
                    node.values[i] = pred_value;
                    Self::delete_from(tx, node.children[i], pred_key)?;
                }
                None => {
                    for j in i..n - 1 {
                        node.keys[j] = node.keys[j + 1];
                        node.values[j] = node.values[j + 1];
                    }
                    for j in i..n {
                        node.children[j] = node.children[j + 1];
                    }
                    node.nkeys -= 1;
                }
            }
            return Ok(true);
        }
        if node.leaf != 0 {
            return Ok(false);
        }
        Self::delete_from(tx, node.children[i], key)
    }

    fn max_of(node_ptr: pmdk_sim::Toid<MBNode>) -> Option<(u64, u64)> {
        if node_ptr.is_null() {
            return None;
        }
        // SAFETY: live node.
        let node = unsafe { node_ptr.as_ref() };
        let n = node.nkeys as usize;
        if node.leaf != 0 {
            return (n > 0).then(|| (node.keys[n - 1], node.values[n - 1]));
        }
        if let Some(found) = Self::max_of(node.children[n]) {
            return Some(found);
        }
        if n > 0 {
            return Some((node.keys[n - 1], node.values[n - 1]));
        }
        Self::max_of(node.children[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puddled::{Daemon, DaemonConfig};
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    #[test]
    fn puddles_btree_matches_std_btreemap() {
        let tmp = tempfile::tempdir().unwrap();
        let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let tree = PuddlesBTree::new(&client, "bt").unwrap();

        let mut model = BTreeMap::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut keys: Vec<u64> = (0..500).collect();
        keys.shuffle(&mut rng);
        for &k in &keys {
            tree.insert(k, k * 10).unwrap();
            model.insert(k, k * 10);
        }
        assert_eq!(tree.len(), 500);
        for k in 0..500 {
            assert_eq!(tree.search(k), model.get(&k).copied(), "key {k}");
        }
        assert_eq!(tree.search(10_000), None);

        // Updates overwrite.
        tree.insert(7, 777).unwrap();
        assert_eq!(tree.search(7), Some(777));
        assert_eq!(tree.len(), 500);

        // Delete half the keys.
        keys.shuffle(&mut rng);
        for &k in keys.iter().take(250) {
            assert!(tree.delete(k).unwrap(), "delete {k}");
            model.remove(&k);
        }
        assert_eq!(tree.len(), 250);
        for k in 0..500 {
            let expected = if k == 7 && model.contains_key(&7) {
                Some(777)
            } else {
                model.get(&k).copied()
            };
            assert_eq!(tree.search(k), expected, "key {k} after deletes");
        }
        assert!(!tree.delete(99_999).unwrap());
    }

    #[test]
    fn pmdk_btree_matches_std_btreemap() {
        let tmp = tempfile::tempdir().unwrap();
        let tree = PmdkBTree::create(tmp.path().join("bt.pmdk"), 64 << 20).unwrap();
        let mut model = BTreeMap::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut keys: Vec<u64> = (0..500).collect();
        keys.shuffle(&mut rng);
        for &k in &keys {
            tree.insert(k, k + 1).unwrap();
            model.insert(k, k + 1);
        }
        for k in 0..500 {
            assert_eq!(tree.search(k), model.get(&k).copied());
        }
        for &k in keys.iter().take(100) {
            assert!(tree.delete(k).unwrap());
            model.remove(&k);
        }
        for k in 0..500 {
            assert_eq!(tree.search(k), model.get(&k).copied());
        }
        assert_eq!(tree.len(), 400);
    }
}
