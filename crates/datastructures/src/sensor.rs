//! The sensor-network data-aggregation workload (Fig. 13/14).
//!
//! A home node distributes a pointer-rich state structure to independent
//! sensor nodes (each modelled as its own daemon instance with its own PM
//! directory and global-space base — the stand-in for the paper's docker
//! containers). Each sensor modifies its copy and exports it; the home node
//! aggregates all copies.
//!
//! * With **Puddles**, the home node simply imports each exported pool —
//!   the daemon assigns fresh addresses and the library rewrites pointers —
//!   and then walks the imported structure in place.
//! * With **PMDK**, copies of a pool cannot be opened alongside each other
//!   (same UUID), so the home node must open each copy sequentially and
//!   *reallocate* every state variable into its own pool, rebuilding the
//!   structure — the cost Fig. 14 shows growing with the state size.

use puddles::{impl_pm_type, PmPtr, Pool, PuddleClient};

/// One sensor state variable (a node in a linked structure).
#[repr(C)]
pub struct StateVar {
    /// Variable identifier.
    pub id: u64,
    /// Observation value.
    pub value: u64,
    /// Next variable.
    pub next: PmPtr<StateVar>,
}
impl_pm_type!(StateVar, "datastructures::sensor::StateVar", [next => StateVar]);

/// The sensor-state root: a linked list of state variables.
#[repr(C)]
pub struct SensorRoot {
    /// First state variable.
    pub head: PmPtr<StateVar>,
    /// Number of variables.
    pub count: u64,
}
impl_pm_type!(SensorRoot, "datastructures::sensor::SensorRoot", [head => StateVar]);

/// A sensor (or home) node's state stored in a Puddles pool.
pub struct SensorState {
    client: PuddleClient,
    pool: Pool,
}

impl SensorState {
    /// Creates the state with `vars` variables, all zero.
    pub fn create(client: &PuddleClient, pool_name: &str, vars: u64) -> puddles::Result<Self> {
        let pool = client.open_or_create_pool(pool_name, Default::default())?;
        if pool.root::<SensorRoot>().is_none() {
            pool.tx(|tx| {
                pool.create_root(
                    tx,
                    SensorRoot {
                        head: PmPtr::null(),
                        count: 0,
                    },
                )
            })?;
            let state = SensorState {
                client: client.clone(),
                pool,
            };
            for id in 0..vars {
                state.push_var(id, 0)?;
            }
            return Ok(state);
        }
        Ok(SensorState {
            client: client.clone(),
            pool,
        })
    }

    /// Opens existing state (e.g. an imported pool).
    pub fn open(client: &PuddleClient, pool: Pool) -> Self {
        SensorState {
            client: client.clone(),
            pool,
        }
    }

    fn root(&self) -> PmPtr<SensorRoot> {
        self.pool.root().expect("root created")
    }

    fn push_var(&self, id: u64, value: u64) -> puddles::Result<()> {
        let root = self.root();
        self.client.tx(|tx| {
            let r = self.pool.deref_mut(root)?;
            let node = self.pool.alloc_value(
                tx,
                StateVar {
                    id,
                    value,
                    next: r.head,
                },
            )?;
            let count = r.count + 1;
            tx.set(&mut r.head, node)?;
            tx.set(&mut r.count, count)?;
            Ok(())
        })
    }

    /// Number of state variables.
    pub fn count(&self) -> u64 {
        self.pool.deref(self.root()).map(|r| r.count).unwrap_or(0)
    }

    /// The sensor's measurement step: every variable is updated in
    /// transactions (modelling the paper's "independent nodes modify these
    /// copies").
    pub fn observe(&self, delta: u64) -> puddles::Result<()> {
        let root = self.root();
        let head = self.pool.deref(root)?.head;
        let mut cur = head;
        while !cur.is_null() {
            self.client.tx(|tx| {
                // SAFETY: state variables stay mapped while the pool is open.
                let var = unsafe { cur.as_mut() };
                let new = var.value + delta + var.id;
                tx.set(&mut var.value, new)?;
                Ok(())
            })?;
            // SAFETY: as above.
            cur = unsafe { cur.as_ref() }.next;
        }
        Ok(())
    }

    /// Reads all (id, value) pairs.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let root = self.root();
        let mut out = Vec::new();
        let mut cur = self
            .pool
            .deref(root)
            .map(|r| r.head)
            .unwrap_or(PmPtr::null());
        while !cur.is_null() {
            // SAFETY: as above; imported puddles are mapped through
            // `Pool::deref` below before raw traversal starts.
            let var = self.pool.deref(cur).expect("state var mapped");
            out.push((var.id, var.value));
            cur = var.next;
        }
        out
    }

    /// Aggregates (sums per-variable values of) another state into this one.
    pub fn aggregate_from(&self, other: &SensorState) -> puddles::Result<()> {
        let snapshot = other.snapshot();
        let root = self.root();
        // Index our variables by id once.
        let mut ours = std::collections::HashMap::new();
        {
            let mut cur = self.pool.deref(root)?.head;
            while !cur.is_null() {
                let var = self.pool.deref(cur)?;
                ours.insert(var.id, cur);
                cur = var.next;
            }
        }
        self.client.tx(|tx| {
            for (id, value) in &snapshot {
                if let Some(ptr) = ours.get(id) {
                    // SAFETY: our own live state variable.
                    let var = unsafe { ptr.as_mut() };
                    let new = var.value + value;
                    tx.set(&mut var.value, new)?;
                }
            }
            Ok(())
        })
    }

    /// Exports this state's pool to `dest` (Puddles path: raw in-memory
    /// representation, no serialization).
    pub fn export(&self, dest: impl AsRef<std::path::Path>) -> puddles::Result<()> {
        self.client.export_pool(&self.pool.name(), dest)
    }
}

/// The Puddles home-node aggregation: import every exported sensor state and
/// merge it. Returns (import time, rewrite+walk+merge time).
pub fn puddles_aggregate(
    home_client: &PuddleClient,
    home: &SensorState,
    exports: &[std::path::PathBuf],
) -> puddles::Result<(std::time::Duration, std::time::Duration)> {
    let mut import_time = std::time::Duration::ZERO;
    let mut merge_time = std::time::Duration::ZERO;
    for (i, dir) in exports.iter().enumerate() {
        let t0 = std::time::Instant::now();
        let imported = home_client.import_pool(dir, &format!("import-{i}-{}", rand_suffix()))?;
        import_time += t0.elapsed();
        let t1 = std::time::Instant::now();
        let imported_state = SensorState::open(home_client, imported);
        home.aggregate_from(&imported_state)?;
        merge_time += t1.elapsed();
    }
    Ok((import_time, merge_time))
}

fn rand_suffix() -> u64 {
    rand::random()
}

// ---------------------------------------------------------------------
// PMDK home-node path: sequential open + full reallocation.
// ---------------------------------------------------------------------

/// A sensor state stored in a PMDK pool (used to model the PMDK home node).
pub struct PmdkSensorState {
    pool: pmdk_sim::PmdkPool,
}

/// One state variable in the PMDK layout.
#[repr(C)]
pub struct PmdkStateVar {
    /// Variable identifier.
    pub id: u64,
    /// Observation value.
    pub value: u64,
    /// Next variable.
    pub next: pmdk_sim::Toid<PmdkStateVar>,
}

/// Root of the PMDK sensor state.
#[repr(C)]
pub struct PmdkSensorRoot {
    /// First variable.
    pub head: pmdk_sim::Toid<PmdkStateVar>,
    /// Number of variables.
    pub count: u64,
}

impl PmdkSensorState {
    /// Creates the state with `vars` variables.
    pub fn create(
        path: impl AsRef<std::path::Path>,
        vars: u64,
        pool_size: usize,
    ) -> pmdk_sim::Result<Self> {
        let pool = pmdk_sim::PmdkPool::create(path, pool_size)?;
        pool.tx(|tx| {
            let root = tx.alloc(PmdkSensorRoot {
                head: pmdk_sim::Toid::null(),
                count: 0,
            })?;
            tx.set_root(root)?;
            Ok(())
        })?;
        let state = PmdkSensorState { pool };
        for id in 0..vars {
            state.push_var(id, id)?;
        }
        Ok(state)
    }

    /// Opens an existing state file.
    pub fn open(path: impl AsRef<std::path::Path>) -> pmdk_sim::Result<Self> {
        Ok(PmdkSensorState {
            pool: pmdk_sim::PmdkPool::open(path)?,
        })
    }

    fn root(&self) -> pmdk_sim::Toid<PmdkSensorRoot> {
        self.pool.root()
    }

    /// Appends a variable.
    pub fn push_var(&self, id: u64, value: u64) -> pmdk_sim::Result<()> {
        let root = self.root();
        self.pool.tx(|tx| {
            // SAFETY: root object is live.
            let r = unsafe { root.as_mut() };
            let node = tx.alloc(PmdkStateVar {
                id,
                value,
                next: r.head,
            })?;
            tx.add(r)?;
            r.head = node;
            r.count += 1;
            Ok(())
        })
    }

    /// Reads all (id, value) pairs.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        // SAFETY: root and nodes are live while the pool is open.
        unsafe {
            let mut cur = self.root().as_ref().head;
            while !cur.is_null() {
                let var = cur.as_ref();
                out.push((var.id, var.value));
                cur = var.next;
            }
        }
        out
    }

    /// Number of variables.
    pub fn count(&self) -> u64 {
        // SAFETY: root is live.
        unsafe { self.root().as_ref() }.count
    }

    /// The PMDK home-node aggregation: each sensor's pool file is opened
    /// *sequentially* (copies cannot be open together), its variables are
    /// read out and *reallocated/merged* into the home pool.
    pub fn aggregate_from_file(&self, path: impl AsRef<std::path::Path>) -> pmdk_sim::Result<()> {
        let other = PmdkSensorState::open(path)?;
        let snapshot = other.snapshot();
        drop(other);
        // Merge: existing ids are summed, new ids are reallocated here (the
        // rebuild cost the paper attributes to PMDK).
        let root = self.root();
        self.pool.tx(|tx| {
            for (id, value) in &snapshot {
                // SAFETY: root and nodes are live.
                let r = unsafe { root.as_mut() };
                let mut cur = r.head;
                let mut found = false;
                while !cur.is_null() {
                    let var = unsafe { cur.as_mut() };
                    if var.id == *id {
                        tx.add(var)?;
                        var.value += value;
                        found = true;
                        break;
                    }
                    cur = var.next;
                }
                if !found {
                    let node = tx.alloc(PmdkStateVar {
                        id: *id,
                        value: *value,
                        next: r.head,
                    })?;
                    tx.add(r)?;
                    r.head = node;
                    r.count += 1;
                }
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puddled::{Daemon, DaemonConfig};

    #[test]
    fn sensors_export_and_home_aggregates_with_pointer_rewrite() {
        // Two "machines": a sensor node and a home node.
        let sensor_dir = tempfile::tempdir().unwrap();
        let home_dir = tempfile::tempdir().unwrap();
        let export_dir = tempfile::tempdir().unwrap();

        let sensor_daemon = Daemon::start(DaemonConfig::for_testing(sensor_dir.path())).unwrap();
        let sensor_client = PuddleClient::connect_local(&sensor_daemon).unwrap();
        let sensor = SensorState::create(&sensor_client, "state", 50).unwrap();
        sensor.observe(10).unwrap();
        let export_path = export_dir.path().join("sensor-0");
        sensor.export(&export_path).unwrap();

        let home_daemon = Daemon::start(DaemonConfig::for_testing(home_dir.path())).unwrap();
        let home_client = PuddleClient::connect_local(&home_daemon).unwrap();
        let home = SensorState::create(&home_client, "home", 50).unwrap();

        let (_, _) = puddles_aggregate(&home_client, &home, &[export_path]).unwrap();

        // Aggregated values match the sensor's observation (id + 10 each).
        let mut snap = home.snapshot();
        snap.sort();
        for (id, value) in snap {
            assert_eq!(value, id + 10, "variable {id}");
        }
    }

    #[test]
    fn pmdk_home_merges_by_reallocating() {
        let tmp = tempfile::tempdir().unwrap();
        let sensor_path = tmp.path().join("sensor.pmdk");
        {
            let sensor = PmdkSensorState::create(&sensor_path, 20, 8 << 20).unwrap();
            assert_eq!(sensor.count(), 20);
        }
        let home = PmdkSensorState::create(tmp.path().join("home.pmdk"), 20, 8 << 20).unwrap();
        home.aggregate_from_file(&sensor_path).unwrap();
        let mut snap = home.snapshot();
        snap.sort();
        // Home started with value = id, sensor contributed value = id.
        for (id, value) in snap {
            assert_eq!(value, 2 * id);
        }
    }
}
