//! Workload data structures for the Puddles reproduction.
//!
//! Every workload in the paper's evaluation (§5) is implemented here, once
//! per PM library being compared, on top of the same substrate:
//!
//! * [`list`] — singly linked list (Fig. 9) for Puddles, PMDK-sim and
//!   Romulus-sim;
//! * [`btree`] — order-8 B-tree (Fig. 10) for Puddles and PMDK-sim;
//! * [`kv`] — the `simplekv` hash-map KV store driven by YCSB (Fig. 11) for
//!   Puddles, PMDK-sim and Romulus-sim;
//! * [`fatptr`] — the fat-pointer-vs-native-pointer microbenchmark
//!   structures (Fig. 1);
//! * [`euler`] — the embarrassingly parallel Euler-identity array workload
//!   (Fig. 12);
//! * [`sensor`] — the sensor-network data-aggregation workload (Fig. 13/14).
//!
//! Simplifications relative to the paper are documented per module and in
//! DESIGN.md (e.g. list deletion removes the head rather than the tail so
//! the operation stays O(1) on a singly linked list, and B-tree deletion
//! does not rebalance).

pub mod btree;
pub mod euler;
pub mod fatptr;
pub mod kv;
pub mod list;
pub mod sensor;
