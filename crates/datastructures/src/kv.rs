//! The `simplekv` key-value store driven by YCSB (Fig. 11), implemented for
//! Puddles, PMDK-sim and Romulus-sim.
//!
//! The store is a fixed-size hash table of chained entries with 8-byte keys
//! and 64-byte values, matching the PMDK `simplekv` example the paper
//! evaluates. Scans (workload E) read `scan_len` consecutive keys through
//! point lookups, as the hash-map layout has no ordered iteration.

use puddles::{impl_pm_type, PmPtr, Pool, PoolOptions, PuddleClient};
use ycsb::{Operation, Request};

/// Value size in bytes.
pub const VALUE_SIZE: usize = 64;
/// Number of hash buckets (power of two).
pub const BUCKETS: usize = 1 << 16;

fn bucket_of(key: u64) -> usize {
    // Fibonacci hashing keeps the chains short for sequential YCSB keys.
    (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 48) as usize & (BUCKETS - 1)
}

/// A fixed-size value.
pub type Value = [u8; VALUE_SIZE];

/// Builds a deterministic value for a key (used by the benches and tests).
pub fn value_for(key: u64, tag: u8) -> Value {
    let mut v = [0u8; VALUE_SIZE];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8] = tag;
    v
}

// ---------------------------------------------------------------------
// Puddles implementation.
// ---------------------------------------------------------------------

/// One chained entry.
#[repr(C)]
pub struct PEntry {
    key: u64,
    value: Value,
    next: PmPtr<PEntry>,
}
impl_pm_type!(PEntry, "datastructures::kv::PEntry", [next => PEntry]);

/// The KV root: a bucket table of entry pointers.
#[repr(C)]
pub struct PKvRoot {
    buckets: PmPtr<PmPtr<PEntry>>,
    nbuckets: u64,
    count: u64,
}
impl_pm_type!(PKvRoot, "datastructures::kv::PKvRoot", [buckets => ()]);

/// Hash-map KV store over the Puddles library.
pub struct PuddlesKv {
    client: PuddleClient,
    pool: Pool,
}

impl PuddlesKv {
    /// Creates (or opens) the store in pool `name`.
    pub fn new(client: &PuddleClient, name: &str) -> puddles::Result<Self> {
        // The bucket table is one large allocation, so use puddles big
        // enough to hold it.
        let options = PoolOptions::default().puddle_size(16 << 20);
        let pool = client.open_or_create_pool(name, options)?;
        if pool.root::<PKvRoot>().is_none() {
            pool.tx(|tx| {
                let table_bytes = BUCKETS * std::mem::size_of::<PmPtr<PEntry>>();
                let table = pool.alloc_raw(tx, table_bytes, 0)?;
                // SAFETY: fresh allocation of `table_bytes` writable bytes.
                unsafe { std::ptr::write_bytes(table as *mut u8, 0, table_bytes) };
                pool.create_root(
                    tx,
                    PKvRoot {
                        buckets: PmPtr::from_addr(table as u64),
                        nbuckets: BUCKETS as u64,
                        count: 0,
                    },
                )?;
                Ok(())
            })?;
        }
        Ok(PuddlesKv {
            client: client.clone(),
            pool,
        })
    }

    fn root(&self) -> PmPtr<PKvRoot> {
        self.pool.root().expect("root created in new()")
    }

    fn bucket_slot(&self, key: u64) -> *mut PmPtr<PEntry> {
        let root = self.pool.deref(self.root()).expect("root mapped");
        let table = root.buckets.addr() as *mut PmPtr<PEntry>;
        // SAFETY: the table has BUCKETS slots and bucket_of < BUCKETS.
        unsafe { table.add(bucket_of(key)) }
    }

    /// Reads the value stored for `key`.
    pub fn get(&self, key: u64) -> Option<Value> {
        // SAFETY: the bucket table and entries stay mapped while the pool is
        // open; this is the native-pointer read path.
        unsafe {
            let mut cur = *self.bucket_slot(key);
            while !cur.is_null() {
                let entry = cur.as_ref();
                if entry.key == key {
                    return Some(entry.value);
                }
                cur = entry.next;
            }
        }
        None
    }

    /// Inserts or updates `key` → `value`.
    pub fn put(&self, key: u64, value: &Value) -> puddles::Result<()> {
        let root = self.root();
        self.client.tx(|tx| {
            let slot = self.bucket_slot(key);
            // SAFETY: slot points into the mapped bucket table.
            let head = unsafe { *slot };
            let mut cur = head;
            while !cur.is_null() {
                // SAFETY: live entry.
                let entry = unsafe { cur.as_mut() };
                if entry.key == key {
                    tx.add(&entry.value)?;
                    entry.value = *value;
                    return Ok(());
                }
                cur = entry.next;
            }
            let entry = self.pool.alloc_value(
                tx,
                PEntry {
                    key,
                    value: *value,
                    next: head,
                },
            )?;
            tx.add_range(slot as usize, std::mem::size_of::<PmPtr<PEntry>>())?;
            // SAFETY: as above.
            unsafe { *slot = entry };
            let r = self.pool.deref_mut(root)?;
            let count = r.count + 1;
            tx.set(&mut r.count, count)?;
            Ok(())
        })
    }

    /// Number of records stored.
    pub fn len(&self) -> u64 {
        self.pool.deref(self.root()).map(|r| r.count).unwrap_or(0)
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executes one YCSB request.
    pub fn execute(&self, req: &Request) -> puddles::Result<u64> {
        execute_generic(
            req,
            |k| self.get(k).map(|v| v[8] as u64),
            |k, v| self.put(k, v),
        )
    }
}

// ---------------------------------------------------------------------
// PMDK-sim implementation.
// ---------------------------------------------------------------------

/// One chained entry (fat pointers).
#[repr(C)]
pub struct MEntry {
    key: u64,
    value: Value,
    next: pmdk_sim::Toid<MEntry>,
}

/// The PMDK KV root.
#[repr(C)]
pub struct MKvRoot {
    buckets: pmdk_sim::PmdkOid,
    nbuckets: u64,
    count: u64,
}

/// Hash-map KV store over the PMDK baseline.
pub struct PmdkKv {
    pool: pmdk_sim::PmdkPool,
}

impl PmdkKv {
    /// Creates the store in a new pool file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>, pool_size: usize) -> pmdk_sim::Result<Self> {
        let pool = pmdk_sim::PmdkPool::create(path, pool_size)?;
        pool.tx(|tx| {
            let table_bytes = BUCKETS * std::mem::size_of::<pmdk_sim::Toid<MEntry>>();
            let table = tx.alloc_raw(table_bytes)?;
            // SAFETY: fresh allocation of `table_bytes` bytes.
            unsafe { std::ptr::write_bytes(table.direct(), 0, table_bytes) };
            let root = tx.alloc(MKvRoot {
                buckets: table,
                nbuckets: BUCKETS as u64,
                count: 0,
            })?;
            tx.set_root(root)?;
            Ok(())
        })?;
        Ok(PmdkKv { pool })
    }

    fn root(&self) -> pmdk_sim::Toid<MKvRoot> {
        self.pool.root()
    }

    fn bucket_slot(&self, key: u64) -> *mut pmdk_sim::Toid<MEntry> {
        // SAFETY: root object is live.
        let root = unsafe { self.root().as_ref() };
        // The table itself is reached through a fat pointer (one translation
        // per access), then indexed.
        let table = root.buckets.direct() as *mut pmdk_sim::Toid<MEntry>;
        // SAFETY: the table has BUCKETS slots.
        unsafe { table.add(bucket_of(key)) }
    }

    /// Reads the value stored for `key`; every chain hop pays a fat-pointer
    /// translation.
    pub fn get(&self, key: u64) -> Option<Value> {
        // SAFETY: table and entries are live while the pool is open.
        unsafe {
            let mut cur = *self.bucket_slot(key);
            while !cur.is_null() {
                let entry = cur.as_ref();
                if entry.key == key {
                    return Some(entry.value);
                }
                cur = entry.next;
            }
        }
        None
    }

    /// Inserts or updates `key` → `value`.
    pub fn put(&self, key: u64, value: &Value) -> pmdk_sim::Result<()> {
        self.pool.tx(|tx| {
            let slot = self.bucket_slot(key);
            // SAFETY: slot points into the live bucket table.
            let head = unsafe { *slot };
            let mut cur = head;
            while !cur.is_null() {
                // SAFETY: live entry.
                let entry = unsafe { cur.as_mut() };
                if entry.key == key {
                    tx.add(&entry.value)?;
                    entry.value = *value;
                    return Ok(());
                }
                cur = entry.next;
            }
            let entry = tx.alloc(MEntry {
                key,
                value: *value,
                next: head,
            })?;
            tx.log_range(slot as usize, std::mem::size_of::<pmdk_sim::Toid<MEntry>>())?;
            // SAFETY: as above.
            unsafe { *slot = entry };
            // SAFETY: root object is live.
            let root = unsafe { self.root().as_mut() };
            tx.add(&root.count)?;
            root.count += 1;
            Ok(())
        })
    }

    /// Number of records stored.
    pub fn len(&self) -> u64 {
        // SAFETY: root object is live.
        unsafe { self.root().as_ref() }.count
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executes one YCSB request.
    pub fn execute(&self, req: &Request) -> pmdk_sim::Result<u64> {
        execute_generic(
            req,
            |k| self.get(k).map(|v| v[8] as u64),
            |k, v| self.put(k, v),
        )
    }
}

// ---------------------------------------------------------------------
// Romulus-sim implementation.
// ---------------------------------------------------------------------

const RENTRY_KEY: u64 = 0;
const RENTRY_VALUE: u64 = 8;
const RENTRY_NEXT: u64 = 8 + VALUE_SIZE as u64;
const RENTRY_SIZE: usize = 16 + VALUE_SIZE;

/// Hash-map KV store over the Romulus baseline.
pub struct RomulusKv {
    pool: romulus_sim::RomulusPool,
    table_off: u64,
    count: std::sync::atomic::AtomicU64,
}

impl RomulusKv {
    /// Creates the store in a new pool file at `path`.
    pub fn create(
        path: impl AsRef<std::path::Path>,
        region_size: usize,
    ) -> romulus_sim::pool::Result<Self> {
        let pool = romulus_sim::RomulusPool::create(path, region_size)?;
        let table_off = pool.tx(|tx| {
            let table = tx.alloc(BUCKETS * 8)?;
            tx.store_bytes(table, &vec![0u8; BUCKETS * 8]);
            tx.set_root(table);
            Ok(table)
        })?;
        Ok(RomulusKv {
            pool,
            table_off,
            count: std::sync::atomic::AtomicU64::new(0),
        })
    }

    fn slot_off(&self, key: u64) -> u64 {
        self.table_off + (bucket_of(key) * 8) as u64
    }

    /// Reads the value stored for `key`.
    pub fn get(&self, key: u64) -> Option<Value> {
        // SAFETY: offsets were produced by this store's allocator.
        unsafe {
            let mut cur = std::ptr::read_unaligned(self.pool.at::<u64>(self.slot_off(key)));
            while cur != 0 {
                let k = std::ptr::read_unaligned(self.pool.at::<u64>(cur + RENTRY_KEY));
                if k == key {
                    return Some(std::ptr::read_unaligned(
                        self.pool.at::<Value>(cur + RENTRY_VALUE),
                    ));
                }
                cur = std::ptr::read_unaligned(self.pool.at::<u64>(cur + RENTRY_NEXT));
            }
        }
        None
    }

    /// Inserts or updates `key` → `value`.
    pub fn put(&self, key: u64, value: &Value) -> romulus_sim::pool::Result<()> {
        let slot = self.slot_off(key);
        self.pool.tx(|tx| {
            let head: u64 = tx.load(slot);
            let mut cur = head;
            while cur != 0 {
                let k: u64 = tx.load(cur + RENTRY_KEY);
                if k == key {
                    tx.store_bytes(cur + RENTRY_VALUE, value);
                    return Ok(());
                }
                cur = tx.load(cur + RENTRY_NEXT);
            }
            let entry = tx.alloc(RENTRY_SIZE)?;
            tx.store(entry + RENTRY_KEY, key);
            tx.store_bytes(entry + RENTRY_VALUE, value);
            tx.store(entry + RENTRY_NEXT, head);
            tx.store(slot, entry);
            self.count
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        })
    }

    /// Number of records stored (volatile counter).
    pub fn len(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executes one YCSB request.
    pub fn execute(&self, req: &Request) -> romulus_sim::pool::Result<u64> {
        execute_generic(
            req,
            |k| self.get(k).map(|v| v[8] as u64),
            |k, v| self.put(k, v),
        )
    }
}

/// Shared YCSB request dispatch: maps each operation onto the store's
/// get/put primitives the same way for every library.
fn execute_generic<E>(
    req: &Request,
    get: impl Fn(u64) -> Option<u64>,
    put: impl Fn(u64, &Value) -> Result<(), E>,
) -> Result<u64, E> {
    let mut acc = 0u64;
    match req.op {
        Operation::Read => {
            acc = get(req.key).unwrap_or(0);
        }
        Operation::Update | Operation::Insert => {
            put(req.key, &value_for(req.key, 1))?;
        }
        Operation::Scan => {
            for k in req.key..req.key + req.scan_len {
                acc = acc.wrapping_add(get(k).unwrap_or(0));
            }
        }
        Operation::ReadModifyWrite => {
            let tag = get(req.key).unwrap_or(0) as u8;
            put(req.key, &value_for(req.key, tag.wrapping_add(1)))?;
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use puddled::{Daemon, DaemonConfig};
    use std::collections::HashMap;
    use ycsb::Workload;

    #[test]
    fn puddles_kv_matches_a_hashmap_model() {
        let tmp = tempfile::tempdir().unwrap();
        let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let kv = PuddlesKv::new(&client, "kv").unwrap();
        let mut model: HashMap<u64, Value> = HashMap::new();
        for k in 0..2000u64 {
            let v = value_for(k, (k % 7) as u8);
            kv.put(k, &v).unwrap();
            model.insert(k, v);
        }
        // Overwrites.
        for k in (0..2000u64).step_by(3) {
            let v = value_for(k, 0xEE);
            kv.put(k, &v).unwrap();
            model.insert(k, v);
        }
        assert_eq!(kv.len(), 2000);
        for k in 0..2100u64 {
            assert_eq!(kv.get(k), model.get(&k).copied(), "key {k}");
        }
    }

    #[test]
    fn pmdk_and_romulus_kv_agree_with_puddles_on_ycsb_a() {
        let tmp = tempfile::tempdir().unwrap();
        let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let p = PuddlesKv::new(&client, "ycsb").unwrap();
        let m = PmdkKv::create(tmp.path().join("kv.pmdk"), 64 << 20).unwrap();
        let r = RomulusKv::create(tmp.path().join("kv.rom"), 64 << 20).unwrap();

        let records = 1000u64;
        for k in 0..records {
            let v = value_for(k, 0);
            p.put(k, &v).unwrap();
            m.put(k, &v).unwrap();
            r.put(k, &v).unwrap();
        }
        for req in Workload::A.generate(records, 2000, 5) {
            p.execute(&req).unwrap();
            m.execute(&req).unwrap();
            r.execute(&req).unwrap();
        }
        for k in 0..records {
            assert_eq!(p.get(k), m.get(k), "pmdk key {k}");
            assert_eq!(p.get(k), r.get(k), "romulus key {k}");
        }
    }
}
