//! Fat-pointer vs native-pointer microbenchmark structures (Fig. 1).
//!
//! The paper's Fig. 1 measures the overhead of 128-bit base+offset pointers
//! over native pointers when creating and traversing a linked list (2^16
//! nodes) and a binary tree (height 16). These structures isolate exactly
//! that difference: the *native* variants link nodes with raw addresses, the
//! *fat* variants link them with `(region id, offset)` pairs resolved
//! through a registry on every dereference — the same translation PMDK-style
//! libraries perform.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// A 128-bit fat pointer: (region id, offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
pub struct FatPtr {
    /// Region identifier, resolved through the global registry.
    pub region: u64,
    /// Offset within the region.
    pub off: u64,
}

impl FatPtr {
    /// The null fat pointer.
    pub const NULL: FatPtr = FatPtr { region: 0, off: 0 };

    /// Returns `true` if this is the null pointer.
    pub fn is_null(self) -> bool {
        self.region == 0
    }

    /// Resolves the pointer to a native address (base lookup + add).
    #[inline]
    pub fn resolve(self) -> *mut u8 {
        if self.is_null() {
            return std::ptr::null_mut();
        }
        let registry = region_registry().read();
        match registry.get(&self.region) {
            Some(&base) => (base + self.off as usize) as *mut u8,
            None => std::ptr::null_mut(),
        }
    }
}

fn region_registry() -> &'static RwLock<HashMap<u64, usize>> {
    static REG: OnceLock<RwLock<HashMap<u64, usize>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(HashMap::new()))
}

/// A bump-allocated arena standing in for a mapped PM region.
pub struct Arena {
    id: u64,
    buf: Vec<u8>,
    used: usize,
}

impl Arena {
    /// Creates an arena of `capacity` bytes and registers it for fat-pointer
    /// translation.
    pub fn new(capacity: usize) -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let buf = vec![0u8; capacity];
        region_registry().write().insert(id, buf.as_ptr() as usize);
        Arena { id, buf, used: 64 }
    }

    /// Allocates `size` bytes, returning (fat pointer, native pointer).
    pub fn alloc(&mut self, size: usize) -> (FatPtr, *mut u8) {
        let size = (size + 15) & !15;
        assert!(self.used + size <= self.buf.len(), "arena exhausted");
        let off = self.used;
        self.used += size;
        let native = self.buf[off..].as_mut_ptr();
        (
            FatPtr {
                region: self.id,
                off: off as u64,
            },
            native,
        )
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        region_registry().write().remove(&self.id);
    }
}

// ---------------------------------------------------------------------
// Linked list variants.
// ---------------------------------------------------------------------

/// Linked-list node with a native next pointer.
#[repr(C)]
pub struct NativeListNode {
    /// Payload.
    pub value: u64,
    /// Next node.
    pub next: *mut NativeListNode,
}

/// Linked-list node with a fat next pointer (16 bytes; worse locality).
#[repr(C)]
pub struct FatListNode {
    /// Payload.
    pub value: u64,
    /// Next node (fat).
    pub next: FatPtr,
}

/// Builds a native-pointer list of `n` nodes in `arena`; returns the head.
pub fn build_native_list(arena: &mut Arena, n: usize) -> *mut NativeListNode {
    let mut head: *mut NativeListNode = std::ptr::null_mut();
    for i in (0..n).rev() {
        let (_, raw) = arena.alloc(std::mem::size_of::<NativeListNode>());
        let node = raw as *mut NativeListNode;
        // SAFETY: fresh allocation of node size.
        unsafe {
            (*node).value = i as u64;
            (*node).next = head;
        }
        head = node;
    }
    head
}

/// Sums a native-pointer list.
pub fn traverse_native_list(head: *mut NativeListNode) -> u64 {
    let mut sum = 0u64;
    let mut cur = head;
    while !cur.is_null() {
        // SAFETY: nodes live in the arena for the duration of the call.
        unsafe {
            sum = sum.wrapping_add((*cur).value);
            cur = (*cur).next;
        }
    }
    sum
}

/// Builds a fat-pointer list of `n` nodes in `arena`; returns the head.
pub fn build_fat_list(arena: &mut Arena, n: usize) -> FatPtr {
    let mut head = FatPtr::NULL;
    for i in (0..n).rev() {
        let (fat, raw) = arena.alloc(std::mem::size_of::<FatListNode>());
        let node = raw as *mut FatListNode;
        // SAFETY: fresh allocation of node size.
        unsafe {
            (*node).value = i as u64;
            (*node).next = head;
        }
        head = fat;
    }
    head
}

/// Sums a fat-pointer list (one registry lookup per hop).
pub fn traverse_fat_list(head: FatPtr) -> u64 {
    let mut sum = 0u64;
    let mut cur = head;
    while !cur.is_null() {
        let node = cur.resolve() as *mut FatListNode;
        // SAFETY: nodes live in the arena for the duration of the call.
        unsafe {
            sum = sum.wrapping_add((*node).value);
            cur = (*node).next;
        }
    }
    sum
}

// ---------------------------------------------------------------------
// Binary tree variants.
// ---------------------------------------------------------------------

/// Binary-tree node with native child pointers.
#[repr(C)]
pub struct NativeTreeNode {
    /// Key.
    pub key: u64,
    /// Left child.
    pub left: *mut NativeTreeNode,
    /// Right child.
    pub right: *mut NativeTreeNode,
}

/// Binary-tree node with fat child pointers.
#[repr(C)]
pub struct FatTreeNode {
    /// Key.
    pub key: u64,
    /// Left child.
    pub left: FatPtr,
    /// Right child.
    pub right: FatPtr,
}

/// Builds a complete native-pointer binary tree of the given height.
pub fn build_native_tree(arena: &mut Arena, height: u32) -> *mut NativeTreeNode {
    fn build(arena: &mut Arena, level: u32, counter: &mut u64) -> *mut NativeTreeNode {
        if level == 0 {
            return std::ptr::null_mut();
        }
        let (_, raw) = arena.alloc(std::mem::size_of::<NativeTreeNode>());
        let node = raw as *mut NativeTreeNode;
        *counter += 1;
        // SAFETY: fresh allocation.
        unsafe {
            (*node).key = *counter;
            (*node).left = build(arena, level - 1, counter);
            (*node).right = build(arena, level - 1, counter);
        }
        node
    }
    let mut counter = 0;
    build(arena, height, &mut counter)
}

/// Depth-first sum of a native-pointer tree.
///
/// Not `unsafe fn`: the benchmark harness passes pointers produced by
/// [`build_native_tree`] into the same arena, mirroring the fat-pointer
/// variant's safe signature so the two traversals are called identically.
#[allow(clippy::not_unsafe_ptr_arg_deref)]
pub fn traverse_native_tree(root: *mut NativeTreeNode) -> u64 {
    if root.is_null() {
        return 0;
    }
    // SAFETY: nodes live in the arena.
    unsafe {
        (*root)
            .key
            .wrapping_add(traverse_native_tree((*root).left))
            .wrapping_add(traverse_native_tree((*root).right))
    }
}

/// Builds a complete fat-pointer binary tree of the given height.
pub fn build_fat_tree(arena: &mut Arena, height: u32) -> FatPtr {
    fn build(arena: &mut Arena, level: u32, counter: &mut u64) -> FatPtr {
        if level == 0 {
            return FatPtr::NULL;
        }
        let (fat, raw) = arena.alloc(std::mem::size_of::<FatTreeNode>());
        let node = raw as *mut FatTreeNode;
        *counter += 1;
        // SAFETY: fresh allocation.
        unsafe {
            (*node).key = *counter;
            (*node).left = build(arena, level - 1, counter);
            (*node).right = build(arena, level - 1, counter);
        }
        fat
    }
    let mut counter = 0;
    build(arena, height, &mut counter)
}

/// Depth-first sum of a fat-pointer tree.
pub fn traverse_fat_tree(root: FatPtr) -> u64 {
    if root.is_null() {
        return 0;
    }
    let node = root.resolve() as *mut FatTreeNode;
    // SAFETY: nodes live in the arena.
    unsafe {
        (*node)
            .key
            .wrapping_add(traverse_fat_tree((*node).left))
            .wrapping_add(traverse_fat_tree((*node).right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_and_fat_lists_compute_the_same_sum() {
        let mut a1 = Arena::new(8 << 20);
        let mut a2 = Arena::new(8 << 20);
        let native = build_native_list(&mut a1, 10_000);
        let fat = build_fat_list(&mut a2, 10_000);
        assert_eq!(traverse_native_list(native), traverse_fat_list(fat));
        assert_eq!(traverse_native_list(native), (0..10_000u64).sum::<u64>());
    }

    #[test]
    fn native_and_fat_trees_compute_the_same_sum() {
        let mut a1 = Arena::new(32 << 20);
        let mut a2 = Arena::new(32 << 20);
        let native = build_native_tree(&mut a1, 10);
        let fat = build_fat_tree(&mut a2, 10);
        let nodes = (1u64 << 10) - 1;
        assert_eq!(traverse_native_tree(native), (1..=nodes).sum::<u64>());
        assert_eq!(traverse_native_tree(native), traverse_fat_tree(fat));
    }

    #[test]
    fn fat_pointers_are_twice_the_size_of_native_pointers() {
        assert_eq!(std::mem::size_of::<FatPtr>(), 16);
        assert_eq!(std::mem::size_of::<*mut NativeListNode>(), 8);
        assert!(std::mem::size_of::<FatListNode>() > std::mem::size_of::<NativeListNode>());
    }
}
