//! Singly linked lists (Fig. 9): insert a tail node, delete a node, sum all
//! values — implemented for Puddles, PMDK-sim and Romulus-sim.
//!
//! Deletion removes the *head* node so the operation is O(1) on a singly
//! linked list (deleting the true tail would be O(n) per operation and make
//! the 10 M-operation benchmark quadratic); insert and traversal match the
//! paper.

use puddles::{impl_pm_type, PmPtr, Pool, PuddleClient};

// ---------------------------------------------------------------------
// Puddles implementation (native pointers).
// ---------------------------------------------------------------------

/// A linked-list node stored in a puddle.
#[repr(C)]
pub struct PNode {
    /// Payload.
    pub value: u64,
    /// Next node (native pointer).
    pub next: PmPtr<PNode>,
}
impl_pm_type!(PNode, "datastructures::list::PNode", [next => PNode]);

/// The list root stored in the pool's root puddle.
#[repr(C)]
pub struct PListRoot {
    /// First node.
    pub head: PmPtr<PNode>,
    /// Last node.
    pub tail: PmPtr<PNode>,
    /// Number of nodes.
    pub len: u64,
}
impl_pm_type!(
    PListRoot,
    "datastructures::list::PListRoot",
    [head => PNode, tail => PNode]
);

/// Singly linked list over the Puddles library.
pub struct PuddlesList {
    client: PuddleClient,
    pool: Pool,
}

impl PuddlesList {
    /// Creates (or opens) the list in pool `name`.
    pub fn new(client: &PuddleClient, name: &str) -> puddles::Result<Self> {
        let pool = client.open_or_create_pool(name, Default::default())?;
        if pool.root::<PListRoot>().is_none() {
            pool.tx(|tx| {
                pool.create_root(
                    tx,
                    PListRoot {
                        head: PmPtr::null(),
                        tail: PmPtr::null(),
                        len: 0,
                    },
                )
            })?;
        }
        Ok(PuddlesList {
            client: client.clone(),
            pool,
        })
    }

    fn root(&self) -> PmPtr<PListRoot> {
        self.pool.root().expect("root created in new()")
    }

    /// Appends a node with `value` at the tail.
    pub fn insert_tail(&self, value: u64) -> puddles::Result<()> {
        let root = self.root();
        self.client.tx(|tx| {
            let node = self.pool.alloc_value(
                tx,
                PNode {
                    value,
                    next: PmPtr::null(),
                },
            )?;
            let r = self.pool.deref_mut(root)?;
            if r.tail.is_null() {
                tx.set(&mut r.head, node)?;
                tx.set(&mut r.tail, node)?;
            } else {
                // SAFETY: tail is a live node in a mapped, writable puddle.
                let tail = unsafe { r.tail.as_mut() };
                tx.set(&mut tail.next, node)?;
                tx.set(&mut r.tail, node)?;
            }
            let len = r.len + 1;
            tx.set(&mut r.len, len)?;
            Ok(())
        })
    }

    /// Removes the head node, returning its value.
    pub fn delete_head(&self) -> puddles::Result<Option<u64>> {
        let root = self.root();
        self.client.tx(|tx| {
            let r = self.pool.deref_mut(root)?;
            if r.head.is_null() {
                return Ok(None);
            }
            let head_ptr = r.head;
            // SAFETY: head is a live node.
            let head = unsafe { head_ptr.as_ref() };
            let value = head.value;
            let next = head.next;
            tx.set(&mut r.head, next)?;
            if next.is_null() {
                tx.set(&mut r.tail, PmPtr::null())?;
            }
            let len = r.len - 1;
            tx.set(&mut r.len, len)?;
            self.pool.dealloc(tx, head_ptr)?;
            Ok(Some(value))
        })
    }

    /// Sums every node's value (the traversal benchmark: one load per hop).
    pub fn sum(&self) -> u64 {
        let root = self.root();
        let r = self.pool.deref(root).expect("root mapped");
        let mut sum = 0u64;
        let mut cur = r.head;
        while !cur.is_null() {
            // SAFETY: list nodes stay mapped while the pool is open; the
            // traversal is the native-pointer fast path the paper measures.
            let node = unsafe { cur.as_ref() };
            sum = sum.wrapping_add(node.value);
            cur = node.next;
        }
        sum
    }

    /// Number of nodes.
    pub fn len(&self) -> u64 {
        self.pool.deref(self.root()).map(|r| r.len).unwrap_or(0)
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// PMDK-sim implementation (fat pointers).
// ---------------------------------------------------------------------

/// A linked-list node stored in a PMDK pool (16-byte fat pointer).
#[repr(C)]
pub struct MNode {
    /// Payload.
    pub value: u64,
    /// Next node (fat pointer, translated on every dereference).
    pub next: pmdk_sim::Toid<MNode>,
}

/// The list root object in a PMDK pool.
#[repr(C)]
pub struct MListRoot {
    /// First node.
    pub head: pmdk_sim::Toid<MNode>,
    /// Last node.
    pub tail: pmdk_sim::Toid<MNode>,
    /// Number of nodes.
    pub len: u64,
}

/// Singly linked list over the PMDK baseline.
pub struct PmdkList {
    pool: pmdk_sim::PmdkPool,
}

impl PmdkList {
    /// Creates the list in a new pool file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>, pool_size: usize) -> pmdk_sim::Result<Self> {
        let pool = pmdk_sim::PmdkPool::create(path, pool_size)?;
        pool.tx(|tx| {
            let root = tx.alloc(MListRoot {
                head: pmdk_sim::Toid::null(),
                tail: pmdk_sim::Toid::null(),
                len: 0,
            })?;
            tx.set_root(root)?;
            Ok(())
        })?;
        Ok(PmdkList { pool })
    }

    fn root(&self) -> pmdk_sim::Toid<MListRoot> {
        self.pool.root()
    }

    /// Appends a node with `value` at the tail.
    pub fn insert_tail(&self, value: u64) -> pmdk_sim::Result<()> {
        let root = self.root();
        self.pool.tx(|tx| {
            let node = tx.alloc(MNode {
                value,
                next: pmdk_sim::Toid::null(),
            })?;
            // SAFETY: the root object is live for the pool's lifetime.
            let r = unsafe { root.as_mut() };
            tx.add(r)?;
            if r.tail.is_null() {
                r.head = node;
                r.tail = node;
            } else {
                // SAFETY: tail is a live node.
                let tail = unsafe { r.tail.as_mut() };
                tx.add(tail)?;
                tail.next = node;
                r.tail = node;
            }
            r.len += 1;
            Ok(())
        })
    }

    /// Removes the head node, returning its value.
    pub fn delete_head(&self) -> pmdk_sim::Result<Option<u64>> {
        let root = self.root();
        self.pool.tx(|tx| {
            // SAFETY: root is live.
            let r = unsafe { root.as_mut() };
            if r.head.is_null() {
                return Ok(None);
            }
            tx.add(r)?;
            let head = r.head;
            // SAFETY: head is live.
            let head_ref = unsafe { head.as_ref() };
            let value = head_ref.value;
            let next = head_ref.next;
            r.head = next;
            if next.is_null() {
                r.tail = pmdk_sim::Toid::null();
            }
            r.len -= 1;
            tx.free(head)?;
            Ok(Some(value))
        })
    }

    /// Sums every node's value: each hop pays the fat-pointer translation.
    pub fn sum(&self) -> u64 {
        let root = self.root();
        // SAFETY: root is live.
        let r = unsafe { root.as_ref() };
        let mut sum = 0u64;
        let mut cur = r.head;
        while !cur.is_null() {
            // SAFETY: nodes are live while the pool is open.
            let node = unsafe { cur.as_ref() };
            sum = sum.wrapping_add(node.value);
            cur = node.next;
        }
        sum
    }

    /// Number of nodes.
    pub fn len(&self) -> u64 {
        // SAFETY: root is live.
        unsafe { self.root().as_ref() }.len
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Romulus-sim implementation (offsets into the main replica).
// ---------------------------------------------------------------------

const RNODE_VALUE: u64 = 0;
const RNODE_NEXT: u64 = 8;
const RNODE_SIZE: usize = 16;
const RROOT_HEAD: u64 = 0;
const RROOT_TAIL: u64 = 8;
const RROOT_LEN: u64 = 16;
const RROOT_SIZE: usize = 24;

/// Singly linked list over the Romulus baseline (offset-based links).
pub struct RomulusList {
    pool: romulus_sim::RomulusPool,
    root: u64,
}

impl RomulusList {
    /// Creates the list in a new pool file at `path`.
    pub fn create(
        path: impl AsRef<std::path::Path>,
        region_size: usize,
    ) -> romulus_sim::pool::Result<Self> {
        let pool = romulus_sim::RomulusPool::create(path, region_size)?;
        let root = pool.tx(|tx| {
            let root = tx.alloc(RROOT_SIZE)?;
            tx.store(root + RROOT_HEAD, 0u64);
            tx.store(root + RROOT_TAIL, 0u64);
            tx.store(root + RROOT_LEN, 0u64);
            tx.set_root(root);
            Ok(root)
        })?;
        Ok(RomulusList { pool, root })
    }

    /// Appends a node with `value` at the tail.
    pub fn insert_tail(&self, value: u64) -> romulus_sim::pool::Result<()> {
        let root = self.root;
        self.pool.tx(|tx| {
            let node = tx.alloc(RNODE_SIZE)?;
            tx.store(node + RNODE_VALUE, value);
            tx.store(node + RNODE_NEXT, 0u64);
            let tail: u64 = tx.load(root + RROOT_TAIL);
            if tail == 0 {
                tx.store(root + RROOT_HEAD, node);
            } else {
                tx.store(tail + RNODE_NEXT, node);
            }
            tx.store(root + RROOT_TAIL, node);
            let len: u64 = tx.load(root + RROOT_LEN);
            tx.store(root + RROOT_LEN, len + 1);
            Ok(())
        })
    }

    /// Removes the head node, returning its value (the node's space is not
    /// reclaimed — romulus-sim uses a bump allocator).
    pub fn delete_head(&self) -> romulus_sim::pool::Result<Option<u64>> {
        let root = self.root;
        self.pool.tx(|tx| {
            let head: u64 = tx.load(root + RROOT_HEAD);
            if head == 0 {
                return Ok(None);
            }
            let value: u64 = tx.load(head + RNODE_VALUE);
            let next: u64 = tx.load(head + RNODE_NEXT);
            tx.store(root + RROOT_HEAD, next);
            if next == 0 {
                tx.store(root + RROOT_TAIL, 0u64);
            }
            let len: u64 = tx.load(root + RROOT_LEN);
            tx.store(root + RROOT_LEN, len - 1);
            Ok(Some(value))
        })
    }

    /// Sums every node's value.
    pub fn sum(&self) -> u64 {
        let mut sum = 0u64;
        // SAFETY: offsets were produced by this list's allocator.
        unsafe {
            let mut cur = std::ptr::read_unaligned(self.pool.at::<u64>(self.root + RROOT_HEAD));
            while cur != 0 {
                sum = sum.wrapping_add(std::ptr::read_unaligned(
                    self.pool.at::<u64>(cur + RNODE_VALUE),
                ));
                cur = std::ptr::read_unaligned(self.pool.at::<u64>(cur + RNODE_NEXT));
            }
        }
        sum
    }

    /// Number of nodes.
    pub fn len(&self) -> u64 {
        // SAFETY: the root object is live.
        unsafe { std::ptr::read_unaligned(self.pool.at::<u64>(self.root + RROOT_LEN)) }
    }

    /// Returns `true` if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puddled::{Daemon, DaemonConfig};

    fn puddles_client() -> (tempfile::TempDir, Daemon, PuddleClient) {
        let tmp = tempfile::tempdir().unwrap();
        let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        (tmp, daemon, client)
    }

    #[test]
    fn puddles_list_insert_delete_sum() {
        let (_tmp, _daemon, client) = puddles_client();
        let list = PuddlesList::new(&client, "list").unwrap();
        for i in 1..=100 {
            list.insert_tail(i).unwrap();
        }
        assert_eq!(list.len(), 100);
        assert_eq!(list.sum(), (1..=100).sum::<u64>());
        assert_eq!(list.delete_head().unwrap(), Some(1));
        assert_eq!(list.delete_head().unwrap(), Some(2));
        assert_eq!(list.len(), 98);
        assert_eq!(list.sum(), (3..=100).sum::<u64>());
        while list.delete_head().unwrap().is_some() {}
        assert!(list.is_empty());
        assert_eq!(list.sum(), 0);
    }

    #[test]
    fn pmdk_list_insert_delete_sum() {
        let tmp = tempfile::tempdir().unwrap();
        let list = PmdkList::create(tmp.path().join("list.pmdk"), 16 << 20).unwrap();
        for i in 1..=100 {
            list.insert_tail(i).unwrap();
        }
        assert_eq!(list.len(), 100);
        assert_eq!(list.sum(), (1..=100).sum::<u64>());
        assert_eq!(list.delete_head().unwrap(), Some(1));
        assert_eq!(list.len(), 99);
    }

    #[test]
    fn romulus_list_insert_delete_sum() {
        let tmp = tempfile::tempdir().unwrap();
        let list = RomulusList::create(tmp.path().join("list.rom"), 16 << 20).unwrap();
        for i in 1..=100 {
            list.insert_tail(i).unwrap();
        }
        assert_eq!(list.len(), 100);
        assert_eq!(list.sum(), (1..=100).sum::<u64>());
        assert_eq!(list.delete_head().unwrap(), Some(1));
        assert_eq!(list.sum(), (2..=100).sum::<u64>());
    }

    #[test]
    fn all_three_lists_agree_on_a_random_workload() {
        use rand::Rng;
        let (_tmp, _daemon, client) = puddles_client();
        let p = PuddlesList::new(&client, "agree").unwrap();
        let tmp = tempfile::tempdir().unwrap();
        let m = PmdkList::create(tmp.path().join("m.pmdk"), 16 << 20).unwrap();
        let r = RomulusList::create(tmp.path().join("r.rom"), 16 << 20).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        use rand::SeedableRng;
        for _ in 0..300 {
            if rng.gen_bool(0.7) {
                let v = rng.gen_range(0..1000);
                p.insert_tail(v).unwrap();
                m.insert_tail(v).unwrap();
                r.insert_tail(v).unwrap();
            } else {
                let a = p.delete_head().unwrap();
                let b = m.delete_head().unwrap();
                let c = r.delete_head().unwrap();
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
            assert_eq!(p.sum(), m.sum());
            assert_eq!(p.sum(), r.sum());
        }
    }
}
