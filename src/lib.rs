//! Root crate re-exporting the workspace (examples and integration tests live here).
