//! Location-independent data demo: the sensor-network aggregation workload
//! of Fig. 13/14.
//!
//! Several sensor "machines" (independent daemon instances) each modify a
//! copy of a pointer-rich state structure and export it without any
//! serialization; the home machine imports every copy — the daemon assigns
//! fresh addresses and the library rewrites the pointers — and aggregates
//! them in place.
//!
//! Run with `cargo run --example sensor_aggregation`.

use pm_datastructures::sensor::{puddles_aggregate, SensorState};
use puddled::{Daemon, DaemonConfig};
use puddles::PuddleClient;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes = 4;
    let vars_per_node = 100;
    let export_root = tempfile::tempdir()?;

    // Each sensor node runs on its own "machine" (own PM dir, own global
    // puddle space base) and exports its modified state.
    let mut exports = Vec::new();
    for node in 0..nodes {
        let dir = tempfile::tempdir()?;
        let daemon = Daemon::start(DaemonConfig::for_testing(dir.path()))?;
        let client = PuddleClient::connect_local(&daemon)?;
        let state = SensorState::create(&client, "state", vars_per_node)?;
        state.observe(node as u64 * 10)?;
        let dest = export_root.path().join(format!("sensor-{node}"));
        state.export(&dest)?;
        println!(
            "sensor {node}: exported {vars_per_node} state variables to {}",
            dest.display()
        );
        exports.push(dest);
    }

    // The home node imports every copy and aggregates them.
    let home_dir = tempfile::tempdir()?;
    let home_daemon = Daemon::start(DaemonConfig::for_testing(home_dir.path()))?;
    let home_client = PuddleClient::connect_local(&home_daemon)?;
    let home = SensorState::create(&home_client, "home", vars_per_node)?;
    let (import_time, merge_time) = puddles_aggregate(&home_client, &home, &exports)?;
    println!(
        "aggregated {} copies: import {:?}, pointer rewrite + merge {:?}",
        exports.len(),
        import_time,
        merge_time
    );

    let snapshot = home.snapshot();
    println!("home now holds {} variables; first 5:", snapshot.len());
    for (id, value) in snapshot.iter().rev().take(5) {
        println!("  var {id} = {value}");
    }
    Ok(())
}
