//! A persistent key-value store under a YCSB workload — the application the
//! paper's Fig. 11 evaluates, runnable end-to-end on the public API.
//!
//! Run with `cargo run --release --example kv_store`.

use pm_datastructures::kv::{value_for, PuddlesKv};
use puddled::{Daemon, DaemonConfig};
use puddles::PuddleClient;
use ycsb::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pm_dir = tempfile::tempdir()?;
    let daemon = Daemon::start(DaemonConfig::for_testing(pm_dir.path()))?;
    let client = PuddleClient::connect_local(&daemon)?;
    let kv = PuddlesKv::new(&client, "ycsb-demo")?;

    let records = 10_000u64;
    let operations = 20_000usize;
    println!("loading {records} records...");
    for key in 0..records {
        kv.put(key, &value_for(key, 0))?;
    }

    for workload in [Workload::A, Workload::B, Workload::C] {
        let requests = workload.generate(records, operations, 7);
        let start = std::time::Instant::now();
        for request in &requests {
            kv.execute(request)?;
        }
        let elapsed = start.elapsed();
        println!(
            "YCSB-{}: {} ops in {:?} ({:.0} ops/s)",
            workload.name(),
            operations,
            elapsed,
            operations as f64 / elapsed.as_secs_f64()
        );
    }
    println!("store now holds {} records", kv.len());
    Ok(())
}
