//! Application-independent recovery demo (the paper's headline property).
//!
//! A "database writer" starts a transaction and crashes mid-commit (via a
//! failpoint). The writer never comes back: a completely different client —
//! which only has *read* access — still sees consistent data, because the
//! daemon replayed the registered logs when it restarted, before any
//! application mapped the data.
//!
//! Run with `cargo run --example crash_recovery`.

use puddled::{Daemon, DaemonConfig};
use puddles::{impl_pm_type, PmPtr, PoolOptions, PuddleClient};
use puddles_pmem::failpoint;

#[repr(C)]
struct Account {
    balance: u64,
    updates: u64,
}
impl_pm_type!(Account, "examples::crash_recovery::Account", []);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pm_dir = std::env::temp_dir().join("puddles-crash-recovery");
    let _ = std::fs::remove_dir_all(&pm_dir);
    let config = DaemonConfig::for_testing(&pm_dir);

    // --- The writer application ------------------------------------------
    {
        let daemon = Daemon::start(config.clone())?;
        let writer = PuddleClient::connect_local(&daemon)?;
        let pool = writer.create_pool("bank", PoolOptions::default().mode(0o644))?;
        pool.tx(|tx| {
            pool.create_root(
                tx,
                Account {
                    balance: 1000,
                    updates: 0,
                },
            )
        })?;
        let root: PmPtr<Account> = pool.root().unwrap();

        // Crash in the middle of the commit sequence.
        failpoint::arm(failpoint::names::COMMIT_AFTER_UNDO_FLUSH, 0);
        let err = pool
            .tx(|tx| {
                let acc = pool.deref_mut(root)?;
                tx.set(&mut acc.balance, 0)?; // half-done transfer
                tx.set(&mut acc.updates, 1)?;
                Ok(())
            })
            .unwrap_err();
        failpoint::clear_all();
        println!("writer crashed mid-commit: {err}");
        // The writer process is gone; it never performs recovery.
    }

    // --- A different application, after "reboot" --------------------------
    let daemon = Daemon::start(config)?; // recovery runs here, inside puddled
    let reader = PuddleClient::connect_local(&daemon)?;
    let pool = reader.open_pool("bank")?;
    let root: PmPtr<Account> = pool.root().unwrap();
    let account = pool.deref(root)?;
    println!(
        "reader sees balance = {}, updates = {} (consistent: rolled back)",
        account.balance, account.updates
    );
    assert_eq!(account.balance, 1000);
    assert_eq!(account.updates, 0);
    Ok(())
}
