//! Quickstart: start a daemon, open a pool, and update a persistent counter
//! inside failure-atomic transactions.
//!
//! Run with `cargo run --example quickstart`.

use puddled::{Daemon, DaemonConfig};
use puddles::{impl_pm_type, PmPtr, PoolOptions, PuddleClient};

#[repr(C)]
struct Counter {
    value: u64,
}
impl_pm_type!(Counter, "examples::quickstart::Counter", []);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The PM directory stands in for a DAX-mounted persistent-memory device.
    let pm_dir = std::env::temp_dir().join("puddles-quickstart");
    let _ = std::fs::remove_dir_all(&pm_dir);

    // `puddled` runs crash recovery before any application maps data.
    let daemon = Daemon::start(DaemonConfig::for_testing(&pm_dir))?;
    let client = PuddleClient::connect_local(&daemon)?;

    let pool = client.open_or_create_pool("quickstart", PoolOptions::default())?;
    if pool.root::<Counter>().is_none() {
        pool.tx(|tx| pool.create_root(tx, Counter { value: 0 }))?;
        println!("created a fresh persistent counter");
    }

    let root: PmPtr<Counter> = pool.root().expect("root exists");
    for _ in 0..5 {
        pool.tx(|tx| {
            let counter = pool.deref_mut(root)?;
            let next = counter.value + 1;
            tx.set(&mut counter.value, next)?;
            Ok(())
        })?;
    }
    println!("counter is now {}", pool.deref(root)?.value);
    println!("reopen this example with the same PM directory to keep counting");
    Ok(())
}
